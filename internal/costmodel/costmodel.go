// Package costmodel is the analytic kernel model standing in for
// cudaEvent profiling (paper Sec. V-B). Given an operator and a device
// profile it predicts execution time with a roofline-style model:
//
//	time = kernel_launch + ramp + max(flops / peak_flops, bytes / mem_bw)
//
// where ramp is a fixed per-kernel occupancy ramp-up cost
// (SaturationFLOP of lost work at peak rate). The model reproduces the
// qualitative partition-count behaviour of paper Fig. 5:
// compute-saturated operators tolerate splitting almost for free
// because each micro-kernel amortizes the ramp, while tiny or
// launch-bound operators degrade nearly linearly with the partition
// count.
//
// The paper's planner consumes exactly three quantities per operator —
// execution time, tensor sizes and transfer times — so an analytic
// oracle with the right shape preserves the planning problem.
package costmodel

import (
	"tsplit/internal/device"
	"tsplit/internal/graph"
)

// Model predicts operator cost on one device.
type Model struct {
	Dev device.Device
}

// New returns a cost model for the device.
func New(dev device.Device) *Model { return &Model{Dev: dev} }

// FLOPs estimates the floating-point work of an operator.
func (m *Model) FLOPs(op *graph.Op) float64 {
	switch op.Kind {
	case graph.Conv2D:
		x, w, y := op.Inputs[0], op.Inputs[1], op.Outputs[0]
		outElems := float64(y.Shape.NumElements())
		perOut := 2 * float64(w.Shape[1]*w.Shape[2]*w.Shape[3]) // 2·inC·kH·kW
		_ = x
		return outElems * perOut
	case graph.MatMul:
		a, b := op.Inputs[0], op.Inputs[1]
		switch a.Shape.Rank() {
		case 2: // [N,K]×[K,M]
			return 2 * float64(a.Shape[0]) * float64(a.Shape[1]) * float64(b.Shape[1])
		case 3:
			if b.Shape.Rank() == 3 { // [B,M,K]×[B,K,N]
				return 2 * float64(a.Shape[0]) * float64(a.Shape[1]) * float64(a.Shape[2]) * float64(b.Shape[2])
			}
			// [N,S,K]×[K,M]
			return 2 * float64(a.Shape[0]) * float64(a.Shape[1]) * float64(a.Shape[2]) * float64(b.Shape[1])
		default:
			return 2 * float64(a.Shape.NumElements())
		}
	case graph.ReLU, graph.Add, graph.Scale, graph.BiasAdd, graph.Dropout:
		return float64(op.Outputs[0].Shape.NumElements())
	case graph.GELU:
		return 8 * float64(op.Outputs[0].Shape.NumElements())
	case graph.MaxPool, graph.AvgPool:
		k := float64(op.Attrs.KernelH * op.Attrs.KernelW)
		return k * float64(op.Outputs[0].Shape.NumElements())
	case graph.BatchNorm, graph.LayerNorm:
		return 8 * float64(op.Inputs[0].Shape.NumElements())
	case graph.Softmax:
		return 5 * float64(op.Inputs[0].Shape.NumElements())
	case graph.CrossEntropy:
		return 5 * float64(op.Inputs[0].Shape.NumElements())
	case graph.Embedding:
		return 0 // pure gather: bandwidth bound
	case graph.Concat, graph.Transpose:
		return 0 // copies: bandwidth bound
	case graph.Reshape:
		return 0 // metadata only
	case graph.SGDUpdate:
		n := float64(op.Inputs[0].Shape.NumElements())
		return n * float64(2+2*(len(op.Inputs)-2)) // grad apply + state updates
	case graph.GradOp:
		return m.gradFLOPs(op)
	case graph.SplitOp, graph.MergeOp, graph.SwapOut, graph.SwapIn, graph.Recompute:
		return 0
	default:
		return float64(outBytes(op)) / 4
	}
}

// gradFLOPs: backward of a GEMM-like op runs two GEMMs of forward size
// (dX and dW); backward of element-wise ops costs about the forward.
func (m *Model) gradFLOPs(op *graph.Op) float64 {
	fwd := op.FwdOp
	if fwd == nil {
		return float64(outBytes(op)) / 4
	}
	base := m.FLOPs(fwd)
	switch fwd.Kind {
	case graph.Conv2D, graph.MatMul:
		return 2 * base
	case graph.MaxPool, graph.AvgPool:
		return base
	case graph.BatchNorm, graph.LayerNorm, graph.Softmax:
		return 1.5 * base
	case graph.CrossEntropy:
		return base
	case graph.Embedding:
		return 0
	default:
		return base
	}
}

func outBytes(op *graph.Op) int64 {
	var b int64
	for _, t := range op.Outputs {
		b += t.Bytes()
	}
	return b
}

// BytesTouched estimates device-memory traffic: all inputs read plus
// all outputs written (a lower bound that is tight for element-wise and
// copy operators, which is where it binds).
func (m *Model) BytesTouched(op *graph.Op) int64 {
	if op.Kind == graph.Reshape {
		return 0 // aliasing view
	}
	var b int64
	for _, t := range op.Inputs {
		b += t.Bytes()
	}
	return b + outBytes(op)
}

// rampTime is the fixed per-kernel ramp-up cost (wave quantization /
// occupancy ramp): SaturationFLOP worth of lost work at peak rate.
// It is what makes micro-kernels inefficient and produces the
// partition-count curves of paper Fig. 5.
func (m *Model) rampTime() float64 {
	return m.Dev.SaturationFLOP / m.Dev.PeakFLOPS
}

// OpTime predicts the wall-clock execution time of op in seconds. Swap
// operators are priced by TransferBytes; split/merge copies at memory
// bandwidth (and are free when the rewrite marks them in-place via zero
// workspace and matching layouts — see the planner).
func (m *Model) OpTime(op *graph.Op) float64 {
	switch op.Kind {
	case graph.SwapOut, graph.SwapIn:
		return m.TransferTime(TransferBytes(op))
	case graph.SplitOp, graph.MergeOp:
		return m.Dev.KernelLaunch + float64(m.BytesTouched(op))/m.Dev.MemBandwidth
	case graph.Reshape:
		return m.Dev.KernelLaunch
	}
	work := m.FLOPs(op)
	tCompute := work / m.Dev.PeakFLOPS
	tMem := float64(m.BytesTouched(op)) / m.Dev.MemBandwidth
	t := tCompute
	if tMem > t {
		t = tMem
	}
	return m.Dev.KernelLaunch + m.rampTime() + t
}

// TransferTime is the PCIe copy time for the given byte count.
func (m *Model) TransferTime(bytes int64) float64 {
	return float64(bytes) / m.Dev.PCIeBandwidth
}

// TransferBytes is the payload of a swap operator: the tensor it moves.
func TransferBytes(op *graph.Op) int64 {
	switch op.Kind {
	case graph.SwapOut:
		if len(op.Inputs) > 0 {
			return op.Inputs[0].Bytes()
		}
	case graph.SwapIn:
		if len(op.Outputs) > 0 {
			return op.Outputs[0].Bytes()
		}
	}
	return 0
}

// SplitTimes returns the predicted execution times of splitting op into
// pnum micro-operators along the sample axis: each micro-op carries
// 1/pnum of the work and bytes. This is the curve of paper Fig. 5 and
// the ΔT_split kernel-degradation term of Eq. 6.
func (m *Model) SplitTimes(op *graph.Op, pnum int) (perPart, total float64) {
	work := m.FLOPs(op) / float64(pnum)
	bytes := float64(m.BytesTouched(op)) / float64(pnum)
	tCompute := work / m.Dev.PeakFLOPS
	tMem := bytes / m.Dev.MemBandwidth
	t := tCompute
	if tMem > t {
		t = tMem
	}
	perPart = m.Dev.KernelLaunch + m.rampTime() + t
	return perPart, perPart * float64(pnum)
}
