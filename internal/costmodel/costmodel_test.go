package costmodel

import (
	"testing"

	"tsplit/internal/device"
	"tsplit/internal/graph"
	"tsplit/internal/tensor"
)

func convGraph(batch, ch, hw int) (*graph.Graph, *graph.Op) {
	g := graph.New()
	x := g.Input("x", tensor.NewShape(batch, ch, hw, hw), tensor.Float32)
	y := g.Conv2D("c", x, ch, 3, 1, 1)
	return g, y.Producer
}

func TestConvFLOPs(t *testing.T) {
	_, op := convGraph(2, 8, 16)
	m := New(device.TitanRTX)
	// 2 * outElems * inC * k * k
	want := 2.0 * float64(2*8*16*16) * float64(8*3*3)
	if got := m.FLOPs(op); got != want {
		t.Fatalf("flops %g want %g", got, want)
	}
}

func TestMatMulFLOPs(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.NewShape(4, 8), tensor.Float32)
	y := g.Dense("fc", x, 16)
	m := New(device.TitanRTX)
	if got, want := m.FLOPs(y.Producer), 2.0*4*8*16; got != want {
		t.Fatalf("flops %g want %g", got, want)
	}
}

func TestTimeMonotoneInWork(t *testing.T) {
	m := New(device.TitanRTX)
	_, small := convGraph(1, 8, 16)
	_, large := convGraph(8, 8, 16)
	if m.OpTime(small) >= m.OpTime(large) {
		t.Fatal("larger op should take longer")
	}
}

func TestKernelLaunchFloor(t *testing.T) {
	m := New(device.TitanRTX)
	g := graph.New()
	x := g.Input("x", tensor.NewShape(1, 1), tensor.Float32)
	y := g.ReLU("r", x)
	if m.OpTime(y.Producer) < device.TitanRTX.KernelLaunch {
		t.Fatal("time below launch overhead")
	}
}

func TestElementwiseIsBandwidthBound(t *testing.T) {
	m := New(device.TitanRTX)
	g := graph.New()
	x := g.Input("x", tensor.NewShape(64, 1024, 8, 8), tensor.Float32)
	y := g.ReLU("r", x)
	op := y.Producer
	ramp := device.TitanRTX.SaturationFLOP / device.TitanRTX.PeakFLOPS
	want := device.TitanRTX.KernelLaunch + ramp + float64(m.BytesTouched(op))/device.TitanRTX.MemBandwidth
	got := m.OpTime(op)
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("relu time %g, want bandwidth-bound %g", got, want)
	}
}

func TestSlowerDeviceIsSlower(t *testing.T) {
	_, op := convGraph(8, 64, 32)
	fast := New(device.TitanRTX)
	slow := New(device.GTX1080Ti)
	if fast.OpTime(op) >= slow.OpTime(op) {
		t.Fatal("1080Ti must be slower than Titan RTX")
	}
}

func TestTransferTime(t *testing.T) {
	m := New(device.TitanRTX)
	if got := m.TransferTime(12e9 / 2); got < 0.49 || got > 0.51 {
		t.Fatalf("transfer of half the per-second bandwidth = %g s", got)
	}
}

// The Fig. 5 property: splitting a compute-saturated operator is
// almost free at small p_num, while tiny operators degrade quickly.
func TestSplitTimesFig5Shape(t *testing.T) {
	m := New(device.TitanRTX)
	_, big := convGraph(64, 128, 56)

	_, t1 := m.SplitTimes(big, 1)
	_, t4 := m.SplitTimes(big, 4)
	if t4 > 1.25*t1 {
		t.Fatalf("big conv degrades too fast: p4/p1 = %.2f", t4/t1)
	}

	g := graph.New()
	x := g.Input("x", tensor.NewShape(64, 8), tensor.Float32)
	small := g.Dense("fc", x, 8).Producer
	_, s1 := m.SplitTimes(small, 1)
	_, s32 := m.SplitTimes(small, 32)
	if s32 < 3*s1 {
		t.Fatalf("launch-bound op should degrade with splitting: p32/p1 = %.2f", s32/s1)
	}
}

func TestSplitTimesTotalAtLeastUnsplit(t *testing.T) {
	m := New(device.TitanRTX)
	_, op := convGraph(16, 32, 28)
	base := m.OpTime(op)
	for _, p := range []int{2, 4, 8, 16} {
		if _, total := m.SplitTimes(op, p); total < base*0.999 {
			t.Fatalf("p=%d total %g below unsplit %g", p, total, base)
		}
	}
}

func TestGradCostsMoreThanForward(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.NewShape(4, 8, 16, 16), tensor.Float32)
	labels := g.Input("l", tensor.NewShape(4), tensor.Int32)
	y := g.Conv2D("c", x, 8, 3, 1, 1)
	flat := g.Reshape("f", y, tensor.NewShape(4, 8*16*16))
	logits := g.Dense("fc", flat, 4)
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(graph.SGD); err != nil {
		t.Fatal(err)
	}
	m := New(device.TitanRTX)
	var fwd, bwd *graph.Op
	for _, op := range g.Ops {
		if op.Name == "c" {
			fwd = op
		}
		if op.Name == "dc" {
			bwd = op
		}
	}
	if fwd == nil || bwd == nil {
		t.Fatal("ops not found")
	}
	if m.FLOPs(bwd) <= m.FLOPs(fwd) {
		t.Fatal("conv backward should cost about 2x forward")
	}
}

func TestSwapOpsPricedByTransfer(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.NewShape(1024, 1024), tensor.Float32)
	h := g.NewTensor("x.host", x.Shape, x.DType, tensor.HostCopy)
	op := g.NewOp("swapout.x", graph.SwapOut, graph.Forward, []*graph.Tensor{x}, []*graph.Tensor{h}, graph.Attrs{})
	m := New(device.TitanRTX)
	want := float64(x.Bytes()) / device.TitanRTX.PCIeBandwidth
	if got := m.OpTime(op); got != want {
		t.Fatalf("swap-out time %g want %g", got, want)
	}
}

func TestDeviceByName(t *testing.T) {
	d, err := device.ByName("TITAN RTX")
	if err != nil || d.MemBytes != device.TitanRTX.MemBytes {
		t.Fatal("ByName failed")
	}
	if _, err := device.ByName("nope"); err == nil {
		t.Fatal("unknown device should error")
	}
}
