package tsplit_test

import (
	"testing"

	"tsplit"
	"tsplit/internal/core"
	"tsplit/internal/sim"
)

// TestDifferentialPeakNeverExceedsPrediction is the planner/runtime
// differential gate: for every evaluation model and every policy that
// can train it, the MemSim curve's predicted peak must be an executable
// envelope — run with the device capacity clamped to the prediction
// (plus a 1 MiB allowance for the pool's 256-byte allocation rounding,
// which MemSim does not model), the runtime must finish without OOM and
// its observed peak pool usage must stay inside that envelope. The
// planner admits plans on the strength of the curve — if the runtime
// needed more memory than predicted, "verified under budget" would mean
// nothing. The comparison runs with MemoryCentric recompute (free
// eagerly, exactly what MemSim models); the LRU strategy deliberately
// caches above the curve when capacity allows, and with headroom the
// pool legitimately floats above the curve by deferring evictions.
func TestDifferentialPeakNeverExceedsPrediction(t *testing.T) {
	const alignSlack = 1 << 20
	cases := []struct {
		model string
		batch int
		dev   tsplit.Device
	}{
		{"vgg16", 96, tsplit.GTX1080Ti},
		{"resnet50", 64, tsplit.TitanRTX},
		{"inceptionv4", 32, tsplit.TitanRTX},
		{"bert-large", 16, tsplit.TitanRTX},
	}
	for _, tc := range cases {
		t.Run(tc.model, func(t *testing.T) {
			w, err := tsplit.Load(tc.model, tsplit.ModelConfig{BatchSize: tc.batch}, tc.dev)
			if err != nil {
				t.Fatal(err)
			}
			plans := map[string]*tsplit.Plan{}
			if p, err := w.Plan(tsplit.PlanOptions{}); err == nil {
				plans["tsplit"] = p
			} else {
				t.Fatalf("tsplit planner must handle the paper's configurations: %v", err)
			}
			for _, policy := range tsplit.Baselines() {
				if p, err := w.PlanBaseline(policy); err == nil {
					plans[policy] = p
				}
			}
			ms := core.NewMemSim(w.G, w.Sched, w.Lv)
			for _, name := range append([]string{"tsplit"}, tsplit.Baselines()...) {
				plan, ok := plans[name]
				if !ok {
					continue
				}
				_, predicted, _ := ms.Curve(plan)
				envelope := predicted + alignSlack
				res, err := sim.New(w.G, w.Sched, w.Lv, plan, w.Dev, sim.Options{
					Capacity:        envelope,
					Recompute:       sim.MemoryCentric,
					CollectTimeline: true,
				}).Run()
				if err != nil {
					t.Errorf("%s: runtime cannot execute inside the predicted envelope %d: %v",
						name, envelope, err)
					continue
				}
				if res.PeakBytes > envelope {
					t.Errorf("%s: observed peak %d exceeds MemSim prediction %d (by %d bytes)",
						name, res.PeakBytes, predicted, res.PeakBytes-predicted)
				}
				if len(res.Timeline) == 0 {
					t.Fatalf("%s: no timeline collected", name)
				}
				for _, tp := range res.Timeline {
					if tp.MemUsed > envelope {
						t.Errorf("%s: op %d (%s) pool usage %d exceeds prediction %d",
							name, tp.OpIndex, tp.Name, tp.MemUsed, predicted)
						break
					}
				}
			}
		})
	}
}
