package tsplit_test

import (
	"testing"

	"tsplit"
)

// TestVerifyPlanAllModels is the acceptance gate for the plan-invariant
// verifier over the paper's evaluation models: every plan the TSPLIT
// planner produces — and every baseline plan that can train the
// configuration — must verify with zero violations.
func TestVerifyPlanAllModels(t *testing.T) {
	cases := []struct {
		model string
		batch int
		dev   tsplit.Device
	}{
		{"vgg16", 96, tsplit.GTX1080Ti},
		{"resnet50", 64, tsplit.TitanRTX},
		{"inceptionv4", 32, tsplit.TitanRTX},
		{"bert-large", 16, tsplit.TitanRTX},
	}
	for _, tc := range cases {
		t.Run(tc.model, func(t *testing.T) {
			w, err := tsplit.Load(tc.model, tsplit.ModelConfig{BatchSize: tc.batch}, tc.dev)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := w.Plan(tsplit.PlanOptions{})
			if err != nil {
				t.Fatalf("planning: %v", err)
			}
			for _, v := range w.VerifyPlan(plan) {
				t.Errorf("tsplit plan: %s", v)
			}
			for _, policy := range tsplit.Baselines() {
				bp, err := w.PlanBaseline(policy)
				if err != nil {
					continue // policy does not apply to this model (e.g. no conv layers)
				}
				if _, err := w.Run(bp); err != nil {
					continue // OOM: the policy cannot train this configuration
				}
				for _, v := range w.VerifyPlan(bp) {
					t.Errorf("%s plan: %s", policy, v)
				}
			}
		})
	}
}

func TestVerifyPlanReportsTampering(t *testing.T) {
	w, err := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 96}, tsplit.GTX1080Ti)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.Plan(tsplit.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for id, tp := range plan.Tensors {
		if tp.Opt != 0 && tp.RestoreAt > tp.EvictAt && tp.MicroRestore <= 1 {
			tp.RestoreAt = tp.EvictAt
			plan.Tensors[id] = tp
			tampered = true
			break
		}
	}
	if !tampered {
		t.Skip("plan made no window decisions to tamper with")
	}
	if vs := w.VerifyPlan(plan); len(vs) == 0 {
		t.Fatal("tampered plan verified clean")
	}
}
