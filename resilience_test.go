package tsplit_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"tsplit"
)

// stripWallClock removes the one intentionally wall-clock-derived
// metric (planner latency, fed by the sanctioned clock site) from a
// metrics JSON exposition so the rest can be compared byte for byte.
func stripWallClock(t *testing.T, raw []byte) []byte {
	t.Helper()
	var ms []map[string]any
	if err := json.Unmarshal(raw, &ms); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	kept := ms[:0]
	for _, m := range ms {
		if m["name"] == "tsplit_planner_plan_seconds" {
			continue
		}
		kept = append(kept, m)
	}
	out, err := json.MarshalIndent(kept, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResilientAcceptance is the fault-injection acceptance gate over
// the paper's evaluation models: under the default fault severity the
// degradation ladder must always deliver a run (no OOM aborts), the
// surviving plan must verify clean, and repeating the run with the
// same fault seed must reproduce the execution trace and the metrics
// exposition byte for byte.
func TestResilientAcceptance(t *testing.T) {
	cases := []struct {
		model string
		batch int
		dev   tsplit.Device
	}{
		{"vgg16", 96, tsplit.GTX1080Ti},
		{"resnet50", 64, tsplit.TitanRTX},
		{"inceptionv4", 32, tsplit.TitanRTX},
		{"bert-large", 16, tsplit.TitanRTX},
	}
	for _, tc := range cases {
		t.Run(tc.model, func(t *testing.T) {
			run := func() (tsplit.ResilientOutcome, tsplit.Report, []byte, []byte) {
				w, err := tsplit.Load(tc.model, tsplit.ModelConfig{BatchSize: tc.batch}, tc.dev)
				if err != nil {
					t.Fatal(err)
				}
				reg := tsplit.NewRegistry()
				out, rep, err := w.RunResilient(
					tsplit.PlanOptions{},
					tsplit.FaultConfig{Seed: 42, Severity: tsplit.DefaultFaultSeverity},
					tsplit.Observe(reg), tsplit.WithTimeline(),
				)
				if err != nil {
					t.Fatalf("resilient run aborted: %v", err)
				}
				var trace, metrics bytes.Buffer
				if err := tsplit.WriteTrace(&trace, out.Result); err != nil {
					t.Fatal(err)
				}
				if err := reg.WriteJSON(&metrics); err != nil {
					t.Fatal(err)
				}
				for _, v := range w.VerifyPlan(out.Plan) {
					t.Errorf("surviving plan: %s", v)
				}
				return out, rep, trace.Bytes(), stripWallClock(t, metrics.Bytes())
			}

			out1, rep1, trace1, met1 := run()
			out2, rep2, trace2, met2 := run()

			if rep1.Throughput <= 0 {
				t.Fatalf("no throughput delivered: %+v", rep1)
			}
			if len(out1.Stages) == 0 || out1.Stages[len(out1.Stages)-1].Err != "" {
				t.Fatalf("ladder did not end on a surviving rung: %+v", out1.Stages)
			}
			if !bytes.Equal(trace1, trace2) {
				t.Fatal("same fault seed produced different traces")
			}
			if !bytes.Equal(met1, met2) {
				t.Fatal("same fault seed produced different metrics JSON")
			}
			if rep1.Throughput != rep2.Throughput || rep1.PeakGiB != rep2.PeakGiB {
				t.Fatal("same fault seed produced different reports")
			}
			if len(out1.Stages) != len(out2.Stages) {
				t.Fatalf("ladder trails diverged: %+v vs %+v", out1.Stages, out2.Stages)
			}
		})
	}
}
