// Acceptance test for the postmortem pipeline: the planner phase
// spans recorded during a bert-large cold Plan() and a warm Replan()
// must survive the dump → Diagnose round trip with the headline
// result intact — warm replanning (journal replay + live resume)
// costs a small fraction of a cold plan. Timing-threshold checks
// retry with fresh measurements before failing, and compare medians,
// so scheduler noise cannot flake the suite.
package tsplit_test

import (
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/experiments"
	"tsplit/internal/models"
	"tsplit/internal/obs"
)

func TestDoctorColdVsWarmPhaseBreakdown(t *testing.T) {
	p, err := experiments.Prepare("bert-large", models.Config{BatchSize: 64}, device.TitanRTX)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	const rounds = 5
	const maxAttempts = 3
	for attempt := 1; ; attempt++ {
		tr := obs.NewTracer(nil)
		reg := obs.NewRegistry()
		fl := obs.NewFlight(0, nil)
		// BenchmarkPlannerReplanWarm's shape: plan tight, de-escalate to
		// +2% capacity once, then keep replanning at the loose budget —
		// the steady state where the journal prefix replays until the
		// curve fits, with no candidate scoring at all. That fits path
		// is what the <15% claim rests on; the first (divergent) replan
		// is in the samples too and the median absorbs it.
		tight := core.Options{
			Capacity: p.Lv.Peak * 58 / 100, FragmentationReserve: -1,
			Obs: reg, Trace: tr, Flight: fl,
		}
		loose := tight
		loose.Capacity = p.Lv.Peak * 60 / 100

		for r := 0; r < rounds; r++ {
			if _, err := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, tight).Plan(); err != nil {
				t.Fatalf("cold plan: %v", err)
			}
		}
		pl := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, tight)
		prev, err := pl.Plan()
		if err != nil {
			t.Fatalf("warm-chain base plan: %v", err)
		}
		for r := 0; r < rounds; r++ {
			if prev, err = pl.Replan(prev, loose); err != nil {
				t.Fatalf("warm replan %d: %v", r, err)
			}
		}

		dump := &obs.Dump{
			Reason:  "cold vs warm acceptance",
			Events:  fl.Events(),
			Metrics: reg.Snapshot(),
			Spans:   tr.Tree(),
		}
		diag := obs.Diagnose(dump, nil)

		phases := map[string]obs.PhaseStat{}
		for _, ph := range diag.Phases {
			phases[ph.Name] = ph
		}
		cold, ok := phases["planner.plan"]
		if !ok || cold.Count != rounds+1 {
			t.Fatalf("planner.plan phase missing or miscounted: %+v", diag.Phases)
		}
		warm, ok := phases["planner.replan"]
		if !ok || warm.Count != rounds {
			t.Fatalf("planner.replan phase missing or miscounted: %+v", diag.Phases)
		}
		replay, ok := phases["planner.replay"]
		if !ok || replay.Count != rounds {
			t.Fatalf("planner.replay phase missing or miscounted: %+v", diag.Phases)
		}
		for _, name := range []string{"planner.bottleneck", "planner.fold", "planner.finalize", "planner.index.build"} {
			if _, ok := phases[name]; !ok {
				t.Fatalf("phase %q missing from the breakdown: %+v", name, diag.Phases)
			}
		}

		// The replan analysis must see every Replan as a warm journal
		// replay, never a cold fallback.
		if diag.Replan == nil {
			t.Fatal("no replan stats in the diagnosis")
		}
		if diag.Replan.WarmReplans != rounds || diag.Replan.ColdReplans != 0 {
			t.Fatalf("replans: %d warm / %d cold, want %d / 0",
				diag.Replan.WarmReplans, diag.Replan.ColdReplans, rounds)
		}
		if diag.Replan.DecisionsReplayed == 0 {
			t.Fatal("warm replans replayed no journal decisions")
		}

		// Headline: median warm-replan latency under 15% of the median
		// cold plan, with the replay phase inside the replan span.
		if replay.P50Micros > warm.P50Micros {
			t.Fatalf("replay p50 %dµs exceeds its parent replan p50 %dµs",
				replay.P50Micros, warm.P50Micros)
		}
		if warm.P50Micros*100 < cold.P50Micros*15 {
			return
		}
		if attempt == maxAttempts {
			t.Fatalf("warm replan p50 %dµs is not <15%% of cold plan p50 %dµs after %d attempts",
				warm.P50Micros, cold.P50Micros, maxAttempts)
		}
	}
}
