// Acceptance test for the planning service: a bert-large burst
// against tsplit-serve must resolve almost entirely from the
// content-addressed plan cache (hit rate >90%, checked through the
// server's own /metrics endpoint), and a cached response must be far
// cheaper than a cold planner run — cached p99 under the cold p50.
// Timing-threshold checks compare percentiles of repeated
// measurements and retry with fresh servers before failing, so
// scheduler noise cannot flake the suite.
package tsplit_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"tsplit"
	"tsplit/internal/obs"
)

// bertPlanBody is the i-th distinct bert-large plan request: one
// workload (batch 64), distinct capacity budgets from ~58% of the
// model's unmanaged peak (~18.3 GiB) upward, all feasible.
func bertPlanBody(i int) string {
	return fmt.Sprintf(`{"model":"bert-large","config":{"batch_size":64},"options":{"capacity_bytes":%d}}`,
		11<<30+int64(i)<<28)
}

// timedPost posts body and returns latency, status, and cache state.
func timedPost(t *testing.T, client *http.Client, url, body string) (time.Duration, int, string) {
	t.Helper()
	start := time.Now()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return time.Since(start), resp.StatusCode, resp.Header.Get("X-Tsplit-Cache")
}

func pctl(samples []time.Duration, p int) time.Duration {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := (len(samples)*p + 99) / 100
	if i > 0 {
		i--
	}
	return samples[i]
}

func TestServeBertLargeBurst(t *testing.T) {
	const distinct = 5
	const rounds = 5 // sequential hit rounds per key: medians of 5
	const burst = 32 // concurrent clients in the closing burst
	const maxAttempts = 3

	for attempt := 1; ; attempt++ {
		srv := tsplit.NewPlanServer(tsplit.PlanServerConfig{})
		ts := httptest.NewServer(srv)
		client := ts.Client()

		// Cold pass: each distinct key runs the planner once.
		cold := make([]time.Duration, 0, distinct)
		for i := 0; i < distinct; i++ {
			d, code, state := timedPost(t, client, ts.URL+"/v1/plan", bertPlanBody(i))
			if code != http.StatusOK || state != "miss" {
				t.Fatalf("cold key %d: status %d cache %q", i, code, state)
			}
			cold = append(cold, d)
		}

		// Hot rounds: the same keys, sequentially, all cache hits.
		hot := make([]time.Duration, 0, distinct*rounds)
		for r := 0; r < rounds; r++ {
			for i := 0; i < distinct; i++ {
				d, code, state := timedPost(t, client, ts.URL+"/v1/plan", bertPlanBody(i))
				if code != http.StatusOK || state != "hit" {
					t.Fatalf("hot key %d round %d: status %d cache %q", i, r, code, state)
				}
				hot = append(hot, d)
			}
		}

		// Closing burst: concurrent clients replaying the keys. Every
		// response must come from the cache.
		var wg sync.WaitGroup
		burstErrs := make([]error, burst)
		for c := 0; c < burst; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				resp, err := client.Post(ts.URL+"/v1/plan", "application/json",
					strings.NewReader(bertPlanBody(c%distinct)))
				if err != nil {
					burstErrs[c] = err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					burstErrs[c] = fmt.Errorf("burst client %d: status %d", c, resp.StatusCode)
				}
			}(c)
		}
		wg.Wait()
		for _, err := range burstErrs {
			if err != nil {
				t.Fatal(err)
			}
		}

		// The hit rate comes from the server's own exposition endpoint,
		// through the same Prometheus parser tsplit-doctor uses.
		resp, err := client.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		metrics, err := obs.ParsePrometheus(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatalf("parsing /metrics: %v", err)
		}
		var hits, misses, runs float64
		for _, m := range metrics {
			switch m.Name {
			case "tsplit_serve_cache_hits_total":
				hits += m.Value
			case "tsplit_serve_cache_misses_total":
				misses += m.Value
			case "tsplit_serve_planner_runs_total":
				runs += m.Value
			}
		}
		total := hits + misses
		wantTotal := float64(distinct + distinct*rounds + burst)
		if total != wantTotal {
			t.Fatalf("metrics count %v plan requests, want %v", total, wantTotal)
		}
		if runs != distinct {
			t.Fatalf("planner ran %v times, want exactly %d (one per distinct key)", runs, distinct)
		}
		hitRate := hits / total
		if hitRate <= 0.9 {
			t.Fatalf("hit rate %.3f, want > 0.9 (hits %v of %v)", hitRate, hits, total)
		}

		ts.Close()

		// Headline: a cached response's p99 sits well under a cold
		// planner run's p50. Retry with a fresh server before failing —
		// percentile comparisons shrug off individual outliers but not a
		// descheduled test process.
		coldP50, hotP99 := pctl(cold, 50), pctl(hot, 99)
		if hotP99 < coldP50 {
			return
		}
		if attempt == maxAttempts {
			t.Fatalf("cached p99 %v is not under cold p50 %v after %d attempts",
				hotP99, coldP50, maxAttempts)
		}
	}
}

// TestServePublicSurface pins the exported API shape: a PlanServer
// built from the zero config serves a plan whose response decodes into
// the exported PlanResponse alias.
func TestServePublicSurface(t *testing.T) {
	srv := tsplit.NewPlanServer(tsplit.PlanServerConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"model":"vgg16","config":{"batch_size":32}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr tsplit.PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if pr.Model != "vgg16" || pr.Policy != "tsplit" || pr.PredictedPeakBytes <= 0 || len(pr.Plan) == 0 {
		t.Fatalf("unexpected response: model %q policy %q peak %d planBytes %d",
			pr.Model, pr.Policy, pr.PredictedPeakBytes, len(pr.Plan))
	}
}
