GO ?= go

.PHONY: all vet fmt build test race bench bench-guard ci

all: ci

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per planner benchmark: a smoke check that the
# benchmarks build and run, not a measurement (use -benchtime=5x or
# more for numbers worth recording in bench_results.txt).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPlannerPlan' -benchtime 1x .

# Fail if the Plan() hot path (nil Recorder) regresses more than 10%
# allocs/op against the baseline recorded in bench_results.txt.
bench-guard:
	sh scripts/bench_guard.sh

ci: vet fmt build race bench bench-guard
