GO ?= go

.PHONY: all vet build test race bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per planner benchmark: a smoke check that the
# benchmarks build and run, not a measurement (use -benchtime=5x or
# more for numbers worth recording in bench_results.txt).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPlannerPlan' -benchtime 1x .

ci: vet build race bench
