GO ?= go

.PHONY: all vet fmt lint lint-audit build test race bench bench-guard verify-plans cover doctor-smoke serve-smoke simlat-smoke ci

all: ci

vet:
	$(GO) vet ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi

# Static-analysis suite: the determinism rules (maporder, clockdet,
# floateq, errdrop, scratchreuse, spanpair) plus the interprocedural
# concurrency contracts (guardedby, nilsafe, gojoin) over every
# package in the module. Zero findings is the bar; suppress a
# justified site with //lint:allow <rule> <reason>. Findings also land
# in lint_report.json for CI artifact collection.
lint:
	$(GO) run ./cmd/tsplit-lint -report lint_report.json

# Every //lint:allow must carry a reason; this lists them all and
# fails on reasonless suppressions.
lint-audit:
	$(GO) run ./cmd/tsplit-lint -audit

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per planner/simulator benchmark: a smoke check that
# the benchmarks build and run, not a measurement (use -benchtime=100x
# for numbers worth recording in bench_results.txt).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPlannerPlan|BenchmarkSimRun|BenchmarkPredictPeak' -benchtime 1x .

# Fail if the Plan() hot path (nil Recorder) regresses more than 10%
# allocs/op against the baseline recorded in bench_results.txt.
bench-guard:
	sh scripts/bench_guard.sh

# Static plan-invariant verification (core.Verify) of the planner's and
# every applicable baseline's plans across the evaluation models.
verify-plans:
	$(GO) test -run 'TestVerifyPlanAllModels' -count=1 .

# Statement-coverage floor (80%) on the planner core, the runtime
# simulator, and the observability layer.
cover:
	sh scripts/cover_gate.sh

# Postmortem pipeline smoke: bert-large under faults with a flight
# recorder -> dump file -> tsplit-doctor -json parses with a non-empty
# phase breakdown.
doctor-smoke:
	sh scripts/doctor_smoke.sh

# Planning-service smoke: tsplit-serve -smoke (plan miss ->
# byte-identical hit over a real listener) -> metrics + dump artifacts
# -> tsplit-doctor reads the dump back with the serve phases present.
serve-smoke:
	sh scripts/serve_smoke.sh

# Simulation-latency smoke: the simlat experiment across the zoo at
# quick rounds — exercises the pooled-arena and peak-only paths
# end-to-end through the CLI.
simlat-smoke:
	$(GO) run ./cmd/tsplit-bench -exp simlat -quick >/dev/null

ci: vet fmt lint lint-audit build race bench bench-guard verify-plans cover doctor-smoke serve-smoke simlat-smoke
