// Benchmarks that regenerate each table and figure of the paper's
// evaluation (Sec. VI). One testing.B benchmark per experiment id;
// each iteration performs the full experiment so -benchtime=1x gives
// one regeneration. The default scale-search bounds are trimmed so the
// whole suite completes in minutes; cmd/tsplit-bench runs the
// full-range versions and prints the complete tables.
package tsplit_test

import (
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/experiments"
	"tsplit/internal/models"
	"tsplit/internal/sim"
)

// modelsConfig aliases the zoo config for the helpers below.
type modelsConfig = models.Config

// benchHi bounds the scale searches in benchmarks.
const (
	benchHiSample = 512
	benchHiParam  = 16
)

// BenchmarkFig1_BERTMemoryScale regenerates paper Fig. 1: BERT-Large
// memory requirement across the sample × parameter scale grid with
// per-GPU trainability.
func BenchmarkFig1_BERTMemoryScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		grid, caps, err := experiments.Fig1BERTMemoryScale()
		if err != nil {
			b.Fatal(err)
		}
		if len(grid) == 0 || len(caps) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig2a_MemoryTimeline regenerates paper Fig. 2(a): the
// memory footprint over time of SuperNeurons vs TSPLIT on VGG-16.
func BenchmarkFig2a_MemoryTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2aMemoryTimeline(device.TitanRTX, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2b_OverheadPCIe regenerates paper Fig. 2(b):
// SuperNeurons' overhead and PCIe utilization across the CNN models.
func BenchmarkFig2b_OverheadPCIe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2bOverheadPCIe(device.TitanRTX, "superneurons")
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("missing models")
		}
	}
}

// BenchmarkTable2_TensorSizes regenerates paper Table II: the tensor
// size distribution of BERT-Large.
func BenchmarkTable2_TensorSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2TensorSizes(32, 512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_OpSplitCurves regenerates paper Fig. 5: operator
// execution time vs partition count.
func BenchmarkFig5_OpSplitCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5OpSplitCurves(device.TitanRTX, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4_MaxSampleScale regenerates paper Table IV: the
// maximum trainable batch size per model × policy on the Titan RTX.
func BenchmarkTable4_MaxSampleScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table4MaxSampleScale(device.TitanRTX, benchHiSample)
		if t.Get("vgg16", "tsplit") <= 0 {
			b.Fatal("tsplit cannot train vgg16?")
		}
	}
}

// BenchmarkTable5_MaxParamScale regenerates paper Table V: the maximum
// parameter-scale multiplier per model × policy at batch 16.
func BenchmarkTable5_MaxParamScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table5MaxParamScale(device.TitanRTX, benchHiParam)
		if t.Get("resnet50", "tsplit") <= 0 {
			b.Fatal("tsplit cannot scale resnet50?")
		}
	}
}

// BenchmarkFig12_ThroughputRTX regenerates paper Fig. 12: throughput
// vs sample size for four models on the Titan RTX.
func BenchmarkFig12_ThroughputRTX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig12ThroughputRTX()
		if len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig13_Throughput1080Ti regenerates paper Fig. 13: the same
// sweep on the GTX 1080Ti.
func BenchmarkFig13_Throughput1080Ti(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig13Throughput1080Ti()
		if len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig14a_ScaleUnderThroughput regenerates paper Fig. 14(a):
// max sample size under 60%/50% of Base throughput for SuperNeurons,
// TSPLIT w/o Split and TSPLIT.
func BenchmarkFig14a_ScaleUnderThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14aScaleUnderThroughput(device.TitanRTX, benchHiSample)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig14b_StrategyMix regenerates paper Fig. 14(b): TSPLIT's
// swap-vs-recompute byte mix on the Titan RTX vs the GTX 1080Ti.
func BenchmarkFig14b_StrategyMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14bStrategyMix(0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("need both devices")
		}
	}
}

// BenchmarkTable6_MaxSampleVsOffload regenerates paper Table VI:
// sample scale against ZeRO-Offload and FairScale-Offload.
func BenchmarkTable6_MaxSampleVsOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table6MaxSampleVsOffload(device.TitanRTX, benchHiSample)
		if t.Get("vgg16", "tsplit-offload") <= 0 {
			b.Fatal("tsplit missing")
		}
	}
}

// BenchmarkTable7_MaxParamVsOffload regenerates paper Table VII:
// parameter scale against the offload baselines.
func BenchmarkTable7_MaxParamVsOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table7MaxParamVsOffload(device.TitanRTX, benchHiParam)
		if t.Get("transformer", "tsplit-offload") <= 0 {
			b.Fatal("tsplit missing")
		}
	}
}

// BenchmarkFig15_ThroughputVsOffload regenerates paper Fig. 15:
// throughput against the offload baselines.
func BenchmarkFig15_ThroughputVsOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Fig15ThroughputVsOffload()
		if len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// --- ablation benchmarks (DESIGN.md §4) ---

// BenchmarkAblation_PlannerGreedyRatio measures planning cost itself:
// the model-guided greedy search on a large transformer graph.
func BenchmarkAblation_PlannerGreedyRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.Prepare("bert-large", tsplitModelConfig(64), device.TitanRTX)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.PlanPolicy(p, "tsplit", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_SplitVsNoSplit compares the feasibility frontier
// of TSPLIT with and without tensor splitting (Fig. 14(a) in
// miniature).
func BenchmarkAblation_SplitVsNoSplit(b *testing.B) {
	small := device.TitanRTX
	small.MemBytes = 6 << 30
	for i := 0; i < b.N; i++ {
		with := experiments.MaxSampleScale("vgg16", "tsplit", small, tsplitModelConfig(0), 256)
		without := experiments.MaxSampleScale("vgg16", "tsplit-nosplit", small, tsplitModelConfig(0), 256)
		if with < without {
			b.Fatalf("split (%d) below no-split (%d)", with, without)
		}
		b.ReportMetric(float64(with), "max-batch/split")
		b.ReportMetric(float64(without), "max-batch/nosplit")
	}
}

// tsplitModelConfig builds a ModelConfig with the given batch (0 keeps
// the zoo default; scale searches override it anyway).
func tsplitModelConfig(batch int) (c modelsConfig) {
	c.BatchSize = batch
	return
}

// --- planner hot-path benchmarks (perf trajectory) ---

// benchPlannerPlan times Planner.Plan alone (workload preparation is
// outside the timer) under real memory pressure: the capacity is a
// fraction of the unmanaged peak, so the greedy loop must commit many
// decisions. serial selects the reference single-threaded
// full-rebuild path; the default exercises the incremental curve and
// the parallel candidate scoring.
func benchPlannerPlan(b *testing.B, model string, batch, pctOfPeak int, serial bool) {
	b.Helper()
	p, err := experiments.Prepare(model, tsplitModelConfig(batch), device.TitanRTX)
	if err != nil {
		b.Fatal(err)
	}
	cap := p.Lv.Peak * int64(pctOfPeak) / 100
	opts := core.Options{Capacity: cap, FragmentationReserve: -1, Serial: serial}
	pl := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, opts)
	// One untimed run so the planner's one-time arena growth does not
	// bleed into allocs/op: the timed loop measures the steady state a
	// long-lived (or pooled) planner actually runs in, independent of
	// -benchtime. bench_guard.sh relies on this stability.
	if _, err := pl.Plan(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerPlan_VGG16(b *testing.B)    { benchPlannerPlan(b, "vgg16", 256, 60, false) }
func BenchmarkPlannerPlan_ResNet50(b *testing.B) { benchPlannerPlan(b, "resnet50", 256, 60, false) }
func BenchmarkPlannerPlan_BERTLarge(b *testing.B) {
	benchPlannerPlan(b, "bert-large", 64, 60, false)
}

// The _Serial variants run the pre-change planner configuration
// (single-threaded scoring, full memory-curve rebuild every iteration)
// on the same workloads, so the speedup is tracked in bench_results.txt.
func BenchmarkPlannerPlan_VGG16_Serial(b *testing.B) { benchPlannerPlan(b, "vgg16", 256, 60, true) }
func BenchmarkPlannerPlan_ResNet50_Serial(b *testing.B) {
	benchPlannerPlan(b, "resnet50", 256, 60, true)
}
func BenchmarkPlannerPlan_BERTLarge_Serial(b *testing.B) {
	benchPlannerPlan(b, "bert-large", 64, 60, true)
}

// BenchmarkPlannerPlanPooled_BERTLarge is the steady-state arena
// story: Get/Plan/Put against a warmed PlannerPool. allocs/op here is
// the number the ISSUE caps at 100 (the seed spent 7,387); the pool
// reuses every scratch arena, so what remains is the returned Plan
// itself and the planner's per-run bookkeeping.
func BenchmarkPlannerPlanPooled_BERTLarge(b *testing.B) {
	p, err := experiments.Prepare("bert-large", tsplitModelConfig(64), device.TitanRTX)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Capacity: p.Lv.Peak * 60 / 100, FragmentationReserve: -1}
	pp := core.NewPlannerPool(p.G, p.Sched, p.Lv, p.Prof, p.Dev)
	pl := pp.Get(opts)
	if _, err := pl.Plan(); err != nil {
		b.Fatal(err)
	}
	pp.Put(pl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := pp.Get(opts)
		if _, err := pl.Plan(); err != nil {
			b.Fatal(err)
		}
		pp.Put(pl)
	}
}

// BenchmarkPlannerReplanWarm times a warm Replan on the BERT-Large
// workload in the direction replay can actually shortcut: a plan built
// at a tight budget replanned at a slightly looser one (the resilient
// ladder's de-escalation, or a re-plan after memory frees up). Replay
// re-applies the journaled decision prefix until the curve fits and
// rolls the tail back — no candidate scoring at all. Tightening
// deltas move the first bottleneck earlier, diverge at decision 0,
// and honestly cost the same as a cold run, so they are not what this
// measures. Compare against BenchmarkPlannerPlan_BERTLarge for the
// warm/cold ratio (the ISSUE gate is ≥10×; see bench_results.txt).
func BenchmarkPlannerReplanWarm(b *testing.B) {
	p, err := experiments.Prepare("bert-large", tsplitModelConfig(64), device.TitanRTX)
	if err != nil {
		b.Fatal(err)
	}
	tight := core.Options{Capacity: p.Lv.Peak * 58 / 100, FragmentationReserve: -1}
	loose := core.Options{Capacity: p.Lv.Peak * 60 / 100, FragmentationReserve: -1}
	pl := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, tight)
	prev, err := pl.Plan()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := pl.Replan(prev, loose)
		if err != nil {
			b.Fatal(err)
		}
		prev = plan
	}
}

// --- simulator hot-path benchmarks (perf trajectory) ---

// benchSimWorkload prepares a (workload, feasible tsplit plan) pair
// for the simulator benchmarks, using the same runtime options the
// experiment sweeps run with (LRU-hybrid recomputation).
func benchSimWorkload(b *testing.B, model string, batch int) (*experiments.Prepared, *core.Plan, sim.Options) {
	b.Helper()
	p, err := experiments.Prepare(model, tsplitModelConfig(batch), device.TitanRTX)
	if err != nil {
		b.Fatal(err)
	}
	r := experiments.RunPolicy(p, "tsplit", 0)
	if !r.Feasible {
		b.Fatalf("tsplit infeasible on %s b%d: %s", model, batch, r.Reason)
	}
	return p, r.Plan, sim.Options{Recompute: sim.LRURecompute}
}

// benchSimRun times a cold sim.New(...).Run(): every iteration
// rebuilds the simulator state from scratch, which is what every sweep
// cell, differential clamp, and serve cold path paid before SimPool.
func benchSimRun(b *testing.B, model string, batch int) {
	p, plan, opts := benchSimWorkload(b, model, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.New(p.G, p.Sched, p.Lv, plan, p.Dev, opts).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimRun_VGG16(b *testing.B)     { benchSimRun(b, "vgg16", 256) }
func BenchmarkSimRun_ResNet50(b *testing.B)  { benchSimRun(b, "resnet50", 256) }
func BenchmarkSimRun_BERTLarge(b *testing.B) { benchSimRun(b, "bert-large", 64) }

// BenchmarkSimRunPooled_BERTLarge times the steady-state arena path:
// one Simulator recycled through a SimPool, so the event heap, dense
// per-tensor mirrors, allocator tables, and split scratch all carry
// over between iterations. This is what sweep shards and the serve
// layer's warm path pay per simulation.
func BenchmarkSimRunPooled_BERTLarge(b *testing.B) {
	p, plan, opts := benchSimWorkload(b, "bert-large", 64)
	pool := sim.NewSimPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := pool.Get(p.G, p.Sched, p.Lv, plan, p.Dev, opts)
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		pool.Put(s)
	}
}

// BenchmarkPredictPeak_BERTLarge times the peak-only fast path on a
// pooled arena: timing, stream contention, and timeline recording are
// all skipped while the alloc/free event sequence stays identical, so
// the reported peak is bit-for-bit the full Run() peak.
func BenchmarkPredictPeak_BERTLarge(b *testing.B) {
	p, plan, opts := benchSimWorkload(b, "bert-large", 64)
	pool := sim.NewSimPool()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := pool.Get(p.G, p.Sched, p.Lv, plan, p.Dev, opts)
		if _, err := s.PredictPeak(); err != nil {
			b.Fatal(err)
		}
		pool.Put(s)
	}
}

// BenchmarkAblation_DesignChoices runs every DESIGN.md §4 ablation
// sweep (candidate selection, recomputation strategy, split lookahead,
// tie-break, pool placement).
func BenchmarkAblation_DesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := experiments.AllAblations()
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != 5 {
			b.Fatal("missing ablations")
		}
	}
}
