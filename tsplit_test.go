package tsplit_test

import (
	"strings"
	"testing"

	"tsplit"
)

func TestLoadAndRun(t *testing.T) {
	w, err := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 32}, tsplit.TitanRTX)
	if err != nil {
		t.Fatal(err)
	}
	if w.BaselinePeakBytes() <= 0 || w.IdealTime() <= 0 {
		t.Fatal("workload not profiled")
	}
	plan, err := w.Plan(tsplit.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= 0 || rep.PeakGiB <= 0 {
		t.Fatalf("report %+v incomplete", rep)
	}
}

func TestLoadUnknownModel(t *testing.T) {
	if _, err := tsplit.Load("nope", tsplit.ModelConfig{}, tsplit.TitanRTX); err == nil {
		t.Fatal("unknown model must fail")
	}
}

func TestModelAndBaselineLists(t *testing.T) {
	ms := tsplit.Models()
	if len(ms) < 6 {
		t.Fatalf("model zoo too small: %v", ms)
	}
	bs := tsplit.Baselines()
	if len(bs) != 7 {
		t.Fatalf("baselines: %v", bs)
	}
}

func TestPlanBaseline(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 16}, tsplit.TitanRTX)
	for _, pol := range tsplit.Baselines() {
		if _, err := w.PlanBaseline(pol); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
	if _, err := w.PlanBaseline("nope"); err == nil {
		t.Fatal("unknown baseline must fail")
	}
}

func TestRunReportsOOM(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 512}, tsplit.TitanRTX)
	plan, _ := w.PlanBaseline("base")
	if _, err := w.Run(plan); err == nil {
		t.Fatal("vgg16 batch 512 unmanaged must OOM on 24 GB")
	}
}

func TestAutoPlanBeatsPlainPlanOnHardCases(t *testing.T) {
	w, err := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 192}, tsplit.GTX1080Ti)
	if err != nil {
		t.Fatal(err)
	}
	plan, rep, err := w.AutoPlan(tsplit.PlanOptions{})
	if err != nil {
		t.Fatalf("autoplan: %v", err)
	}
	if rep.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	if plan.Counts().Swap+plan.Counts().Recompute == 0 {
		t.Fatal("an 11 GB device must force evictions at batch 192")
	}
}

func TestDisableSplitAblation(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 96}, tsplit.GTX1080Ti)
	plan, _, err := w.AutoPlan(tsplit.PlanOptions{DisableSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Splits) != 0 {
		t.Fatal("ablation plan contains splits")
	}
}

func TestAugmentExport(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 96}, tsplit.GTX1080Ti)
	plan, _, err := w.AutoPlan(tsplit.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := w.Augment(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ag.G.Ops) < len(w.G.Ops) {
		t.Fatal("augmented graph lost operators")
	}
	if !strings.Contains(plan.Describe(), "MiB") {
		t.Fatal("describe output unexpected")
	}
}

func TestFromGraphCustomModel(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 8}, tsplit.TitanRTX)
	// Re-wrap the same graph via FromGraph.
	w2, err := tsplit.FromGraph("custom", w.G, tsplit.V100, tsplit.ModelConfig{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w2.BaselinePeakBytes() != w.BaselinePeakBytes() {
		t.Fatal("same graph, different peak")
	}
}
