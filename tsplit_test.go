package tsplit_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tsplit"
)

func TestLoadAndRun(t *testing.T) {
	w, err := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 32}, tsplit.TitanRTX)
	if err != nil {
		t.Fatal(err)
	}
	if w.BaselinePeakBytes() <= 0 || w.IdealTime() <= 0 {
		t.Fatal("workload not profiled")
	}
	plan, err := w.Plan(tsplit.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= 0 || rep.PeakGiB <= 0 {
		t.Fatalf("report %+v incomplete", rep)
	}
}

func TestLoadUnknownModel(t *testing.T) {
	if _, err := tsplit.Load("nope", tsplit.ModelConfig{}, tsplit.TitanRTX); err == nil {
		t.Fatal("unknown model must fail")
	}
}

func TestModelAndBaselineLists(t *testing.T) {
	ms := tsplit.Models()
	if len(ms) < 6 {
		t.Fatalf("model zoo too small: %v", ms)
	}
	bs := tsplit.Baselines()
	if len(bs) != 7 {
		t.Fatalf("baselines: %v", bs)
	}
}

func TestPlanBaseline(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 16}, tsplit.TitanRTX)
	for _, pol := range tsplit.Baselines() {
		if _, err := w.PlanBaseline(pol); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
	if _, err := w.PlanBaseline("nope"); err == nil {
		t.Fatal("unknown baseline must fail")
	}
}

func TestRunReportsOOM(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 512}, tsplit.TitanRTX)
	plan, _ := w.PlanBaseline("base")
	if _, err := w.Run(plan); err == nil {
		t.Fatal("vgg16 batch 512 unmanaged must OOM on 24 GB")
	}
}

func TestAutoPlanBeatsPlainPlanOnHardCases(t *testing.T) {
	w, err := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 192}, tsplit.GTX1080Ti)
	if err != nil {
		t.Fatal(err)
	}
	plan, rep, err := w.AutoPlan(tsplit.PlanOptions{})
	if err != nil {
		t.Fatalf("autoplan: %v", err)
	}
	if rep.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	if plan.Counts().Swap+plan.Counts().Recompute == 0 {
		t.Fatal("an 11 GB device must force evictions at batch 192")
	}
}

func TestDisableSplitAblation(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 96}, tsplit.GTX1080Ti)
	plan, _, err := w.AutoPlan(tsplit.PlanOptions{DisableSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Splits) != 0 {
		t.Fatal("ablation plan contains splits")
	}
}

func TestAugmentExport(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 96}, tsplit.GTX1080Ti)
	plan, _, err := w.AutoPlan(tsplit.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ag, err := w.Augment(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(ag.G.Ops) < len(w.G.Ops) {
		t.Fatal("augmented graph lost operators")
	}
	if !strings.Contains(plan.Describe(), "MiB") {
		t.Fatal("describe output unexpected")
	}
}

// TestObservabilitySurface exercises the full public observability
// pipeline — PlanWithReport, Observe, WithTimeline, WriteTrace,
// Prometheus exposition — on the two acceptance models.
func TestObservabilitySurface(t *testing.T) {
	for _, tc := range []struct {
		model string
		batch int
	}{
		{"vgg16", 64},
		{"bert-large", 8},
	} {
		w, err := tsplit.Load(tc.model, tsplit.ModelConfig{BatchSize: tc.batch}, tsplit.TitanRTX)
		if err != nil {
			t.Fatal(err)
		}
		reg := tsplit.NewRegistry()
		cap := w.BaselinePeakBytes() * 65 / 100
		plan, report, err := w.PlanWithReport(tsplit.PlanOptions{CapacityBytes: cap, Observe: reg})
		if err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		if report == nil || len(report.Decisions) == 0 {
			t.Fatalf("%s: empty plan report under a 65%% budget", tc.model)
		}
		if got := reg.Counter("tsplit_planner_plans_total"); got != 1 {
			t.Fatalf("%s: plans_total = %d", tc.model, got)
		}

		rep, err := w.Run(plan, tsplit.Observe(reg), tsplit.WithTimeline())
		if err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		if got := reg.Counter("tsplit_sim_runs_total"); got != 1 {
			t.Fatalf("%s: runs_total = %d", tc.model, got)
		}
		if len(rep.Raw.Timeline) == 0 {
			t.Fatalf("%s: WithTimeline collected nothing", tc.model)
		}

		var trace bytes.Buffer
		if err := tsplit.WriteTrace(&trace, rep.Raw); err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(trace.Bytes(), &decoded); err != nil {
			t.Fatalf("%s: invalid trace JSON: %v", tc.model, err)
		}
		if _, ok := decoded["traceEvents"]; !ok {
			t.Fatalf("%s: trace missing traceEvents", tc.model)
		}

		var prom bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"tsplit_planner_plans_total", "tsplit_sim_swap_bytes_total"} {
			if !strings.Contains(prom.String(), want) {
				t.Fatalf("%s: exposition missing %s", tc.model, want)
			}
		}

		var rj bytes.Buffer
		if err := report.WriteJSON(&rj); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(rj.Bytes()) {
			t.Fatalf("%s: plan report is not valid JSON", tc.model)
		}
	}
}

// TestWriteTraceWithoutTimeline pins the guidance error.
func TestWriteTraceWithoutTimeline(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 16}, tsplit.TitanRTX)
	plan, err := w.Plan(tsplit.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tsplit.WriteTrace(&buf, rep.Raw); err == nil {
		t.Fatal("WriteTrace must fail without a collected timeline")
	}
}

func TestFromGraphCustomModel(t *testing.T) {
	w, _ := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 8}, tsplit.TitanRTX)
	// Re-wrap the same graph via FromGraph.
	w2, err := tsplit.FromGraph("custom", w.G, tsplit.V100, tsplit.ModelConfig{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if w2.BaselinePeakBytes() != w.BaselinePeakBytes() {
		t.Fatal("same graph, different peak")
	}
}
