#!/bin/sh
# End-to-end smoke test of the planning service: run tsplit-serve's
# self-test against a real listener (plan miss -> byte-identical hit,
# 404 on an unknown model, /healthz, /metrics), then check that the
# artifacts it leaves behind are consumable — the metrics file by a
# Prometheus-text grep, the postmortem dump by tsplit-doctor, whose
# -require-phases flag gates on the serve.request/serve.plan spans.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

"$GO" run ./cmd/tsplit-serve -smoke \
	-metrics-out "$dir/metrics.prom" -dump-out "$dir/dump.json" >/dev/null

for series in tsplit_serve_requests_total tsplit_serve_cache_hits_total \
	tsplit_serve_cache_misses_total tsplit_serve_planner_runs_total \
	tsplit_serve_plan_seconds; do
	if ! grep -q "^$series" "$dir/metrics.prom"; then
		echo "serve-smoke: $series missing from the metrics exposition" >&2
		exit 1
	fi
done

"$GO" run ./cmd/tsplit-doctor -dump "$dir/dump.json" -require-phases -json >"$dir/diag.json"

for key in '"serve.request"' '"serve.plan"' '"serve.cache.hit"' '"serve.cache.miss"'; do
	if ! grep -q "$key" "$dir/diag.json"; then
		echo "serve-smoke: $key missing from tsplit-doctor -json output" >&2
		exit 1
	fi
done
echo "serve-smoke: plan -> cache -> dump -> tsplit-doctor round trip ok"
