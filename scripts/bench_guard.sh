#!/bin/sh
# bench_guard.sh — planner and simulator hot-path regression guard.
#
# Runs the Plan() benchmarks (with the default nil Recorder, i.e. the
# observability no-op path) and the simulator benchmarks (cold, pooled
# arena, and peak-only fast path) and fails if any regresses against
# the recorded baseline in bench_results.txt:
#
#   - allocs/op: > +10% (allocation counts are deterministic, so the
#     tolerance only absorbs map-rehash jitter) — plus an absolute
#     slack of 2 allocs for the zero-alloc pooled paths, where +10% of
#     ~0 would reject harmless jitter;
#   - ns/op:     > +50% (wall time on a shared box is noisy; the wide
#     bar still catches an accidental return to full-rebuild scans,
#     which cost 4-10x).
#
# The baseline is the LAST occurrence of each benchmark name in that
# file, so appending a fresh measurement section updates the bar.
set -eu
cd "$(dirname "$0")/.."

BASELINE=bench_results.txt
if [ ! -f "$BASELINE" ]; then
    echo "bench-guard: FAIL: baseline file $BASELINE not found in $(pwd)" >&2
    echo "bench-guard: record one with: go test -run '^\$' -bench 'BenchmarkPlannerPlan|BenchmarkSimRun|BenchmarkPredictPeak' -benchtime 100x . | tee $BASELINE" >&2
    exit 1
fi
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

# 100 iterations: the guarded benchmarks are sub-millisecond each, and
# at 5x the one-time arena warm-up (first run on a fresh planner or
# simulator pool) dominated allocs/op; 100x measures the steady state
# the baseline records.
GOMAXPROCS=1 go test -run '^$' \
    -bench 'Benchmark(PlannerPlan_(VGG16|ResNet50|BERTLarge)|SimRun_(VGG16|ResNet50|BERTLarge)|SimRunPooled_BERTLarge|PredictPeak_BERTLarge)$' \
    -benchtime 100x . >"$OUT" 2>&1 || { cat "$OUT"; exit 1; }

awk '
    function field(unit,    i) { for (i = 2; i <= NF; i++) if ($i == unit) return $(i-1); return -1 }
    FNR == NR {
        if ($1 ~ /^Benchmark(PlannerPlan|SimRun|SimRunPooled|PredictPeak)_/ && field("allocs/op") >= 0) {
            base_allocs[$1] = field("allocs/op")
            base_ns[$1] = field("ns/op")
        }
        next
    }
    $1 ~ /^Benchmark(PlannerPlan|SimRun|SimRunPooled|PredictPeak)_/ {
        name = $1; sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
        allocs = field("allocs/op"); ns = field("ns/op")
        if (allocs < 0) next
        seen++
        if (!(name in base_allocs)) {
            printf "bench-guard: no baseline for %s in %s\n", name, ARGV[1]
            bad = 1; next
        }
        ok = 1
        if (allocs > base_allocs[name] * 1.10 + 2) {
            printf "bench-guard: FAIL %-32s %8d allocs/op > baseline %d +10%%\n", name, allocs, base_allocs[name]
            bad = 1; ok = 0
        }
        if (base_ns[name] > 0 && ns > base_ns[name] * 1.50) {
            printf "bench-guard: FAIL %-32s %8d ns/op > baseline %d +50%%\n", name, ns, base_ns[name]
            bad = 1; ok = 0
        }
        if (ok) {
            printf "bench-guard: ok   %-32s %8d ns/op, %6d allocs/op (baseline %d ns, %d allocs)\n", \
                name, ns, allocs, base_ns[name], base_allocs[name]
        }
    }
    END {
        if (seen < 8) { printf "bench-guard: only %d benchmark results parsed, want 8\n", seen; bad = 1 }
        exit bad
    }
' "$BASELINE" "$OUT" || { cat "$OUT"; exit 1; }
