#!/bin/sh
# bench_guard.sh — planner hot-path regression guard.
#
# Runs the Plan() benchmarks (with the default nil Recorder, i.e. the
# observability no-op path) and fails if any model's allocs/op regresses
# more than 10% against the recorded baseline in bench_results.txt.
# The baseline is the LAST occurrence of each benchmark name in that
# file, so appending a fresh measurement section updates the bar.
set -eu
cd "$(dirname "$0")/.."

BASELINE=bench_results.txt
if [ ! -f "$BASELINE" ]; then
    echo "bench-guard: FAIL: baseline file $BASELINE not found in $(pwd)" >&2
    echo "bench-guard: record one with: go test -run '^\$' -bench BenchmarkPlannerPlan -benchtime 5x . | tee $BASELINE" >&2
    exit 1
fi
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

GOMAXPROCS=1 go test -run '^$' \
    -bench 'BenchmarkPlannerPlan_(VGG16|ResNet50|BERTLarge)$' \
    -benchtime 5x . >"$OUT" 2>&1 || { cat "$OUT"; exit 1; }

awk '
    function allocs(    i) { for (i = 2; i <= NF; i++) if ($i == "allocs/op") return $(i-1); return -1 }
    FNR == NR {
        if ($1 ~ /^BenchmarkPlannerPlan_/ && allocs() >= 0) base[$1] = allocs()
        next
    }
    $1 ~ /^BenchmarkPlannerPlan_/ {
        name = $1; sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
        cur = allocs()
        if (cur < 0) next
        seen++
        if (!(name in base)) {
            printf "bench-guard: no baseline for %s in %s\n", name, ARGV[1]
            bad = 1; next
        }
        if (cur > base[name] * 1.10) {
            printf "bench-guard: FAIL %-32s %6d allocs/op > baseline %d +10%%\n", name, cur, base[name]
            bad = 1
        } else {
            printf "bench-guard: ok   %-32s %6d allocs/op (baseline %d)\n", name, cur, base[name]
        }
    }
    END {
        if (seen < 3) { printf "bench-guard: only %d benchmark results parsed\n", seen; bad = 1 }
        exit bad
    }
' "$BASELINE" "$OUT" || { cat "$OUT"; exit 1; }
