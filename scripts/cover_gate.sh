#!/bin/sh
# Coverage gate for the planner core, the runtime simulator, the
# observability layer, the static-analysis engine, and the planning
# service — the packages whose correctness the differential,
# fault-injection, postmortem, lint-dogfood, and serving layers lean
# on. Fails when any package's statement coverage drops below the
# floor.
set -eu

GO=${GO:-go}
FLOOR=80.0

fail=0
for pkg in ./internal/core ./internal/sim ./internal/obs ./internal/lint ./internal/serve; do
	profile=$(mktemp)
	"$GO" test -count=1 -coverprofile="$profile" "$pkg" >/dev/null
	total=$("$GO" tool cover -func="$profile" | awk 'END {gsub(/%/, "", $NF); print $NF}')
	rm -f "$profile"
	ok=$(awk -v t="$total" -v f="$FLOOR" 'BEGIN {print (t >= f) ? 1 : 0}')
	if [ "$ok" = 1 ]; then
		echo "cover: $pkg $total% (floor $FLOOR%)"
	else
		echo "cover: $pkg $total% is below the $FLOOR% floor" >&2
		fail=1
	fi
done
exit $fail
