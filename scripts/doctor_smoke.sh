#!/bin/sh
# End-to-end smoke test of the postmortem pipeline: run bert-large
# under injected faults with a flight recorder attached, dump the
# flight ring, and check that tsplit-doctor can read the dump back and
# produce a non-empty phase-latency breakdown. -require-phases makes
# the doctor itself the gate, so the script needs no JSON tooling.
set -eu

GO=${GO:-go}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

"$GO" run ./cmd/tsplit-train -model bert-large -batch 32 -budget 0.5 \
	-faults -fault-seed 7 \
	-flight-dump "$dir/dump.json" >/dev/null

"$GO" run ./cmd/tsplit-doctor -dump "$dir/dump.json" -require-phases -json >"$dir/diag.json"

# The JSON must be parseable and carry the sections CI consumers read.
for key in '"phases"' '"replan"' '"event_counts"'; do
	if ! grep -q "$key" "$dir/diag.json"; then
		echo "doctor-smoke: $key missing from tsplit-doctor -json output" >&2
		exit 1
	fi
done
echo "doctor-smoke: dump -> tsplit-doctor -json round trip ok"
