// Golden test for warm replanning: Replan(prev, opts) must be
// byte-identical to a cold Plan() at the new options, whatever the
// delta — tighter capacity (journal prefix replay + live resume),
// looser capacity (rollback by not committing the journal tail),
// escalated safety margins (the resilient ladder's path), chained
// replans, and deltas Replan cannot warm-start from (a different
// batch size means a different graph), where it must fall back to a
// cold run rather than replay a stale journal.
package tsplit_test

import (
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/experiments"
	"tsplit/internal/models"
)

// batchStep is one "batch ±1 step" increment for the zoo models
// (default batch 32).
const batchStep = 8

func coldPlan(t *testing.T, p *experiments.Prepared, opts core.Options) (*core.Plan, error) {
	t.Helper()
	return core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, opts).Plan()
}

// requireSameOutcome compares a Replan outcome against a cold Plan()
// outcome, including infeasible results (error text and partial plan
// must agree too).
func requireSameOutcome(t *testing.T, label string, wp *core.Plan, werr error, cp *core.Plan, cerr error) {
	t.Helper()
	if (werr == nil) != (cerr == nil) {
		t.Fatalf("%s: error mismatch: warm=%v cold=%v", label, werr, cerr)
	}
	if werr != nil && werr.Error() != cerr.Error() {
		t.Fatalf("%s: error text mismatch:\nwarm: %v\ncold: %v", label, werr, cerr)
	}
	if w, c := canonicalPlan(wp), canonicalPlan(cp); w != c {
		t.Errorf("%s: plans differ\n--- warm ---\n%s--- cold ---\n%s", label, w, c)
	}
}

func TestReplanMatchesColdPlan(t *testing.T) {
	for _, model := range models.Names() {
		p, err := experiments.Prepare(model, models.Config{}, device.TitanRTX)
		if err != nil {
			t.Fatalf("%s: prepare: %v", model, err)
		}
		capacity := p.Lv.Peak * 75 / 100
		base := core.Options{Capacity: capacity, FragmentationReserve: -1}
		pl := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, base)
		prev, err := pl.Plan()
		if err != nil {
			t.Fatalf("%s: base plan: %v", model, err)
		}

		deltas := []struct {
			name string
			opts core.Options
		}{
			{"cap-10%", core.Options{Capacity: capacity * 90 / 100, FragmentationReserve: -1}},
			{"cap+10%", core.Options{Capacity: capacity * 110 / 100, FragmentationReserve: -1}},
			{"margin+0.10", core.Options{Capacity: capacity, FragmentationReserve: -1, SafetyMargin: 0.10}},
			{"margin+0.20", core.Options{Capacity: capacity, FragmentationReserve: -1, SafetyMargin: 0.20}},
		}
		for _, d := range deltas {
			wp, werr := pl.Replan(prev, d.opts)
			cp, cerr := coldPlan(t, p, d.opts)
			requireSameOutcome(t, model+" "+d.name, wp, werr, cp, cerr)
			// Restore the journal/lastPlan to the base run so every delta
			// warm-starts from the same prev.
			if prev, err = pl.Replan(wp, base); err != nil {
				t.Fatalf("%s: re-base after %s: %v", model, d.name, err)
			}
			if c := canonicalPlan(prev); c != canonicalPlan(mustPlan(t, p, base)) {
				t.Fatalf("%s: re-base after %s diverged", model, d.name)
			}
		}

		// Chained replans: tighter, then tighter again, then back out.
		chain := prev
		for _, d := range []core.Options{
			{Capacity: capacity * 90 / 100, FragmentationReserve: -1},
			{Capacity: capacity * 80 / 100, FragmentationReserve: -1},
			{Capacity: capacity, FragmentationReserve: -1},
		} {
			wp, werr := pl.Replan(chain, d)
			cp, cerr := coldPlan(t, p, d)
			requireSameOutcome(t, model+" chained", wp, werr, cp, cerr)
			if werr != nil {
				break
			}
			chain = wp
		}

		// Batch ±1 step is a different graph: a fresh planner must treat
		// the old plan as foreign and fall back to a cold run.
		for _, batch := range []int{32 - batchStep, 32 + batchStep} {
			pb, err := experiments.Prepare(model, models.Config{BatchSize: batch}, device.TitanRTX)
			if err != nil {
				t.Fatalf("%s: prepare batch=%d: %v", model, batch, err)
			}
			opts := core.Options{Capacity: pb.Lv.Peak * 75 / 100, FragmentationReserve: -1}
			plb := core.NewPlanner(pb.G, pb.Sched, pb.Lv, pb.Prof, pb.Dev, opts)
			wp, werr := plb.Replan(prev, opts)
			cp, cerr := coldPlan(t, pb, opts)
			requireSameOutcome(t, model+" batch", wp, werr, cp, cerr)
		}
	}
}

func mustPlan(t *testing.T, p *experiments.Prepared, opts core.Options) *core.Plan {
	t.Helper()
	plan, err := coldPlan(t, p, opts)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return plan
}

// TestReplanVerifyClean runs core.Verify over warm-replanned plans:
// replay shortcuts must not bypass any safety invariant.
func TestReplanVerifyClean(t *testing.T) {
	for _, model := range models.Names() {
		p, err := experiments.Prepare(model, models.Config{}, device.TitanRTX)
		if err != nil {
			t.Fatalf("%s: prepare: %v", model, err)
		}
		capacity := p.Lv.Peak * 75 / 100
		pl := core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev,
			core.Options{Capacity: capacity, FragmentationReserve: -1})
		prev, err := pl.Plan()
		if err != nil {
			t.Fatalf("%s: base plan: %v", model, err)
		}
		opts := core.Options{Capacity: capacity * 90 / 100, FragmentationReserve: -1}
		plan, err := pl.Replan(prev, opts)
		if err != nil {
			continue // infeasible at the tighter budget is a valid outcome
		}
		if vs := core.VerifyAt(plan, p.G, p.Sched, p.Lv, opts.Capacity); len(vs) != 0 {
			t.Errorf("%s: warm replan violates invariants: %v", model, vs)
		}
	}
}
