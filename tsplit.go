// Package tsplit is a reproduction of "TSPLIT: Fine-grained GPU Memory
// Management for Efficient DNN Training via Tensor Splitting"
// (Nie, Miao, Yang, Cui — ICDE 2022) as a pure-Go library.
//
// It provides:
//
//   - a dataflow-graph representation of DNN training with automatic
//     backward-pass generation and a model zoo (VGG, ResNet,
//     Inception-V4, Transformer/BERT);
//   - simulated GPU devices (Titan RTX, GTX 1080Ti, V100, P100) with
//     an analytic kernel cost model standing in for cudaEvent
//     profiling;
//   - TSPLIT's contribution: the splittable-tensor (sTensor) model and
//     the model-guided planner that jointly optimizes tensor splitting
//     with swap/recompute decisions (paper Algorithm 2);
//   - the baseline policies it is evaluated against (vDNN, gradient
//     checkpointing, SuperNeurons, ZeRO-Offload, FairScale-Offload);
//   - a discrete-event runtime (streams, PCIe, best-fit pool) that
//     measures throughput, peak memory, and PCIe utilization — or
//     reports OOM when a policy cannot train a configuration;
//   - a real float32 engine that executes plans on actual values for
//     end-to-end numeric validation.
//
// Quick start:
//
//	w, err := tsplit.Load("vgg16", tsplit.ModelConfig{BatchSize: 256}, tsplit.TitanRTX)
//	plan, err := w.Plan(tsplit.PlanOptions{})
//	report, err := w.Run(plan)
//	fmt.Printf("%.1f images/s, peak %.1f GiB\n", report.Throughput, report.PeakGiB)
package tsplit

import (
	"fmt"
	"io"

	"tsplit/internal/baselines"
	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/faults"
	"tsplit/internal/graph"
	"tsplit/internal/models"
	"tsplit/internal/obs"
	"tsplit/internal/profiler"
	"tsplit/internal/resilient"
	"tsplit/internal/serve"
	"tsplit/internal/sim"
)

// Re-exported fundamental types. The internal packages carry the
// implementation; these aliases are the supported public surface.
type (
	// Device is a simulated accelerator profile.
	Device = device.Device
	// Graph is a training dataflow graph.
	Graph = graph.Graph
	// Plan is a memory-management strategy configuration.
	Plan = core.Plan
	// ModelConfig scales a zoo model (batch size, parameter scale...).
	ModelConfig = models.Config
	// SimResult is the raw runtime measurement set.
	SimResult = sim.Result
	// Recorder receives metrics from the planner and the runtime. A nil
	// Recorder is valid everywhere and costs nothing.
	Recorder = obs.Recorder
	// Registry is the built-in Recorder: thread-safe counters, gauges,
	// and histograms with Prometheus text and JSON exposition.
	Registry = obs.Registry
	// Label is one metric label (use tsplit.L to build them).
	Label = obs.Label
	// PlanReport is the planner's structured introspection record: one
	// entry per greedy iteration plus plan-level aggregates.
	PlanReport = core.PlanReport
	// Violation is one broken plan invariant found by VerifyPlan.
	Violation = core.Violation
	// FaultConfig selects a deterministic fault-injection environment
	// (seed, severity, fault classes) for RunResilient.
	FaultConfig = faults.Config
	// ResilientOutcome is the result of a RunResilient call: the plan
	// and measurements of the degradation-ladder rung that survived,
	// plus the ladder trail.
	ResilientOutcome = resilient.Outcome
	// Tracer records a deterministic forest of nested spans (planner
	// phases, per-op simulation, ladder rungs). A nil *Tracer is valid
	// everywhere and costs nothing.
	Tracer = obs.Tracer
	// Span is one span in a Tracer's forest.
	Span = obs.Span
	// SpanNode is the exported (JSON-ready) form of a span tree.
	SpanNode = obs.SpanNode
	// Flight is a fixed-size ring of recent structured events (plan
	// decisions, replan divergences, fault injections, ladder
	// escalations). A nil *Flight is valid everywhere.
	Flight = obs.Flight
	// FlightEvent is one recorded flight-ring event.
	FlightEvent = obs.Event
	// Dump is a self-contained postmortem snapshot: flight events,
	// metrics, and span trees.
	Dump = obs.Dump
	// Dumper snapshots a Flight + Registry + Tracer into a Dump sink
	// when triggered (ladder escalations trigger it automatically).
	Dumper = obs.Dumper
	// Diagnosis is tsplit-doctor's structured analysis of a Dump.
	Diagnosis = obs.Diagnosis
	// PlanServer is the planning service: an http.Handler exposing
	// POST /v1/plan with a content-addressed plan cache, request
	// coalescing, and admission control, plus /healthz and /metrics.
	PlanServer = serve.Server
	// PlanServerConfig tunes a PlanServer; the zero value is a usable
	// production default.
	PlanServerConfig = serve.Config
	// PlanRequest is the POST /v1/plan body.
	PlanRequest = serve.PlanRequest
	// PlanResponse is the POST /v1/plan success body.
	PlanResponse = serve.PlanResponse
)

// DefaultFaultSeverity is the documented default for fault injection.
const DefaultFaultSeverity = faults.DefaultSeverity

// NewPlanServer builds a planning server from cfg, applying defaults
// to zero fields. Serve it with net/http: the returned value is the
// handler for /v1/plan, /healthz, and /metrics.
func NewPlanServer(cfg PlanServerConfig) *PlanServer { return serve.New(cfg) }

// NewRegistry returns an empty metrics Registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer returns a wall-clock span tracer.
func NewTracer() *Tracer { return obs.NewTracer(nil) }

// NewFlight returns a flight recorder keeping the last n events
// (n <= 0: a sensible default).
func NewFlight(n int) *Flight { return obs.NewFlight(n, nil) }

// Diagnose analyzes a postmortem dump (optionally against a baseline
// dump) into the structured report tsplit-doctor renders.
func Diagnose(d, baseline *Dump) *Diagnosis { return obs.Diagnose(d, baseline) }

// ReadDumpFile loads a postmortem dump written by a Dumper file sink.
func ReadDumpFile(path string) (*Dump, error) { return obs.ReadDumpFile(path) }

// FileSink returns a Dumper sink overwriting path with each dump
// (last trigger wins — the freshest postmortem is the useful one).
func FileSink(path string) func(*Dump) error { return obs.FileSink(path) }

// L builds a metric label.
func L(key, value string) Label { return obs.L(key, value) }

// Built-in device profiles (paper Sec. VI-A plus the Fig. 1 GPUs).
var (
	TitanRTX  = device.TitanRTX
	GTX1080Ti = device.GTX1080Ti
	V100      = device.V100
	P100      = device.P100
)

// Models lists the built-in model zoo names.
func Models() []string { return models.Names() }

// Baselines lists the built-in baseline policy names.
func Baselines() []string { return append([]string{}, baselines.Names...) }

// PlanOptions tunes the TSPLIT planner.
type PlanOptions struct {
	// CapacityBytes overrides the device memory budget (0 = device).
	CapacityBytes int64
	// DisableSplit turns the planner into the "TSPLIT w/o Split"
	// ablation (swap/recompute only, cost-model guided).
	DisableSplit bool
	// PNums overrides the split-count search space.
	PNums []int
	// SafetyMargin plans against a budget reduced by this fraction,
	// reserving headroom for co-located jobs (see RunResilient).
	SafetyMargin float64
	// Observe receives planner metrics (nil = none).
	Observe Recorder
	// Trace records planner phase spans (nil = none, zero cost).
	Trace *Tracer
	// Flight receives plan-decision and failure events (nil = none).
	Flight *Flight
	// Postmortem, consulted by RunResilient only, snapshots the flight
	// ring, metrics, and span tree whenever the degradation ladder
	// escalates or aborts.
	Postmortem *Dumper
}

// Workload is a model prepared for planning and execution on a device:
// graph, schedule, liveness, and profile.
type Workload struct {
	Name  string
	Cfg   ModelConfig
	Dev   Device
	G     *Graph
	Sched *graph.Schedule
	Lv    *graph.Liveness
	Prof  *profiler.Profile
}

// Load builds and profiles a zoo model for a device.
func Load(model string, cfg ModelConfig, dev Device) (*Workload, error) {
	g, err := models.Build(model, cfg)
	if err != nil {
		return nil, err
	}
	return FromGraph(model, g, dev, cfg)
}

// FromGraph prepares a user-built graph (see package graph builders)
// for planning on a device.
func FromGraph(name string, g *Graph, dev Device, cfg ModelConfig) (*Workload, error) {
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		return nil, err
	}
	lv := graph.AnalyzeLiveness(g, sched)
	return &Workload{
		Name: name, Cfg: cfg, Dev: dev,
		G: g, Sched: sched, Lv: lv, Prof: profiler.New(dev, sched),
	}, nil
}

// BaselinePeakBytes returns the unmanaged memory requirement (the Base
// policy's peak, paper Sec. IV-A M_i curve maximum).
func (w *Workload) BaselinePeakBytes() int64 { return w.Lv.Peak }

// IdealTime returns the profiled iteration time with no memory
// management (paper T = Σ T_i).
func (w *Workload) IdealTime() float64 { return w.Prof.Total() }

// Plan runs TSPLIT's model-guided planner (paper Algorithm 2).
func (w *Workload) Plan(opts PlanOptions) (*Plan, error) {
	pl := core.NewPlanner(w.G, w.Sched, w.Lv, w.Prof, w.Dev, core.Options{
		Capacity:     opts.CapacityBytes,
		DisableSplit: opts.DisableSplit,
		PNums:        opts.PNums,
		SafetyMargin: opts.SafetyMargin,
		Obs:          opts.Observe,
		Trace:        opts.Trace,
		Flight:       opts.Flight,
	})
	return pl.Plan()
}

// PlanWithReport runs the planner with introspection enabled and
// returns the plan together with its per-iteration decision report.
func (w *Workload) PlanWithReport(opts PlanOptions) (*Plan, *PlanReport, error) {
	pl := core.NewPlanner(w.G, w.Sched, w.Lv, w.Prof, w.Dev, core.Options{
		Capacity:      opts.CapacityBytes,
		DisableSplit:  opts.DisableSplit,
		PNums:         opts.PNums,
		SafetyMargin:  opts.SafetyMargin,
		Obs:           opts.Observe,
		Trace:         opts.Trace,
		Flight:        opts.Flight,
		CollectReport: true,
	})
	plan, err := pl.Plan()
	if err != nil {
		return nil, nil, err
	}
	return plan, pl.Report(), nil
}

// VerifyPlan statically checks a plan — from the TSPLIT planner, a
// baseline, a deserialized artifact, or hand edits — against the
// workload's safety invariants: the memory curve stays under the
// device's capacity, no consumer runs while its input is evicted, split
// and micro-restore decisions pair up, recompute chains bottom out at
// recoverable tensors without cycles, and the plan's allocation pattern
// replays through the memory pool without overlap. It returns nil for
// a safe plan; a non-empty result means running the plan would diverge
// or OOM.
func (w *Workload) VerifyPlan(plan *Plan) []Violation {
	return core.VerifyAt(plan, w.G, w.Sched, w.Lv, w.Dev.MemBytes)
}

// PlanBaseline produces a baseline policy's plan ("base", "vdnn-conv",
// "vdnn-all", "checkpoints", "superneurons", "zero-offload",
// "fairscale-offload").
func (w *Workload) PlanBaseline(policy string) (*Plan, error) {
	b, ok := baselines.Registry[policy]
	if !ok {
		return nil, fmt.Errorf("tsplit: unknown baseline %q (have %v)", policy, baselines.Names)
	}
	return b(baselines.Inputs{G: w.G, Sched: w.Sched, Lv: w.Lv, Prof: w.Prof, Dev: w.Dev})
}

// Report is a human-oriented summary of one simulated iteration.
type Report struct {
	// Throughput in samples/second.
	Throughput float64
	// IterationSeconds is the wall-clock time of one iteration.
	IterationSeconds float64
	// Overhead is the slowdown versus the ideal (unmanaged) run.
	Overhead float64
	// PeakGiB is the peak device memory used.
	PeakGiB float64
	// PCIeUtilization is the mean utilization of the two directions.
	PCIeUtilization float64
	// SwapGiB / RecomputedOps summarize memory traffic.
	SwapGiB       float64
	RecomputedOps int
	// Raw carries every runtime counter.
	Raw SimResult
}

// RunOption tunes one simulated run.
type RunOption func(*sim.Options)

// Observe streams the run's metrics into r.
func Observe(r Recorder) RunOption { return func(o *sim.Options) { o.Obs = r } }

// WithTimeline records the per-event execution timeline in the run's
// Raw result, for export with WriteTrace.
func WithTimeline() RunOption { return func(o *sim.Options) { o.CollectTimeline = true } }

// WithTrace records the run as a "sim.run" span with per-op children
// in tr; export alongside the timeline with WriteTraceSpans.
func WithTrace(tr *Tracer) RunOption { return func(o *sim.Options) { o.Trace = tr } }

// WithFlight records OOMs, failures, and injected faults into fl.
func WithFlight(fl *Flight) RunOption { return func(o *sim.Options) { o.Flight = fl } }

// Run simulates one training iteration under the plan and returns the
// measurements, or an error when the plan does not fit the device
// (OOM — the configuration cannot train).
func (w *Workload) Run(plan *Plan, opts ...RunOption) (Report, error) {
	so := sim.Options{Recompute: sim.LRURecompute}
	for _, o := range opts {
		o(&so)
	}
	res, err := sim.New(w.G, w.Sched, w.Lv, plan, w.Dev, so).Run()
	if err != nil {
		return Report{}, err
	}
	return w.report(res), nil
}

// report summarizes a raw simulation result.
func (w *Workload) report(res SimResult) Report {
	r := Report{
		Throughput:       res.Throughput(w.Cfg.BatchSize),
		IterationSeconds: res.Time,
		PeakGiB:          float64(res.PeakBytes) / (1 << 30),
		PCIeUtilization:  res.PCIeUtilization,
		SwapGiB:          float64(res.SwapOutBytes+res.SwapInBytes) / (1 << 30),
		RecomputedOps:    res.RecomputedOps,
		Raw:              res,
	}
	if ideal := w.Prof.Total(); ideal > 0 {
		r.Overhead = (res.Time - ideal) / ideal
	}
	return r
}

// RunResilient plans and simulates one iteration under an injected
// fault environment (op-time misprediction, PCIe degradation,
// transient transfer failures, capacity shrink) with the
// graceful-degradation ladder: plan at a safety margin, replan at
// tighter budgets on injected OOM, and fall back to the swap-all
// baseline before ever aborting. The outcome records every ladder
// rung attempted; the report summarizes the surviving rung's run.
func (w *Workload) RunResilient(po PlanOptions, fc FaultConfig, opts ...RunOption) (ResilientOutcome, Report, error) {
	so := sim.Options{Recompute: sim.LRURecompute}
	for _, o := range opts {
		o(&so)
	}
	rec := po.Observe
	if rec == nil {
		rec = so.Obs // Observe() RunOption covers the whole ladder
	}
	tr := po.Trace
	if tr == nil {
		tr = so.Trace // WithTrace() RunOption covers the whole ladder
	}
	fl := po.Flight
	if fl == nil {
		fl = so.Flight // WithFlight() likewise
	}
	out, err := resilient.Run(baselines.Inputs{G: w.G, Sched: w.Sched, Lv: w.Lv, Prof: w.Prof, Dev: w.Dev}, resilient.Config{
		Faults:        fc,
		SafetyMargin:  po.SafetyMargin,
		Capacity:      po.CapacityBytes,
		Planner:       core.Options{DisableSplit: po.DisableSplit, PNums: po.PNums},
		Sim:           so,
		CollectReport: true,
		Obs:           rec,
		Trace:         tr,
		Flight:        fl,
		Dumper:        po.Postmortem,
	})
	if err != nil {
		return out, Report{}, err
	}
	return out, w.report(out.Result), nil
}

// AutoPlan runs the full plan → trial-execution → replan loop: when
// the runtime validation hits allocator fragmentation, the planner
// retries against a larger reserve (how the real system iterates
// between profiling and planning). It returns the first plan that
// executes, along with its measurements.
func (w *Workload) AutoPlan(opts PlanOptions) (*Plan, Report, error) {
	var lastErr error
	cap := opts.CapacityBytes
	if cap == 0 {
		cap = w.Dev.MemBytes
	}
	// One planner serves the whole reserve ladder: retries warm-replan
	// from the previous attempt (the fragmentation reserve is part of
	// the capacity trio Replan can change), replaying the still-valid
	// decision prefix instead of replanning from scratch.
	pl := core.NewPlanner(w.G, w.Sched, w.Lv, w.Prof, w.Dev, core.Options{})
	var prev *Plan
	for _, reserve := range []int64{0, cap * 6 / 100, cap * 13 / 100, cap * 21 / 100, -1} {
		popts := core.Options{
			Capacity:             opts.CapacityBytes,
			DisableSplit:         opts.DisableSplit,
			PNums:                opts.PNums,
			FragmentationReserve: reserve,
			Obs:                  opts.Observe,
		}
		var plan *Plan
		var err error
		if prev == nil {
			pl.SetOptions(popts)
			plan, err = pl.Plan()
		} else {
			plan, err = pl.Replan(prev, popts)
		}
		if err != nil {
			lastErr = err
			continue
		}
		prev = plan
		rep, err := w.Run(plan)
		if err != nil {
			lastErr = err
			continue
		}
		return plan, rep, nil
	}
	return nil, Report{}, fmt.Errorf("tsplit: no feasible plan: %w", lastErr)
}

// Augment materializes a plan as an augmented dataflow graph with
// split / merge / swap / recompute operators and control edges (paper
// Fig. 10), for export or inspection.
func (w *Workload) Augment(plan *Plan) (*core.Augmented, error) {
	return core.Augment(w.G, w.Sched, w.Lv, plan)
}

// ExportPlanJSON serializes a plan for framework integrations (the
// paper's Sec. VI-D conversion path).
func ExportPlanJSON(w io.Writer, plan *Plan) error { return core.ExportJSON(w, plan) }

// WriteTrace exports a run's timeline (collect it with WithTimeline)
// in Chrome tracing format for chrome://tracing or
// https://ui.perfetto.dev.
func WriteTrace(w io.Writer, res SimResult) error {
	if len(res.Timeline) == 0 {
		return fmt.Errorf("tsplit: result has no timeline (run with tsplit.WithTimeline())")
	}
	return sim.WriteChromeTrace(w, res.Timeline)
}

// WriteTraceSpans is WriteTrace plus the tracer's span forest on its
// own "spans" lane (planner phases, per-op execution, ladder rungs).
// Either side may be empty, but not both.
func WriteTraceSpans(w io.Writer, res SimResult, tr *Tracer) error {
	spans := tr.Tree()
	if len(res.Timeline) == 0 && len(spans) == 0 {
		return fmt.Errorf("tsplit: nothing to export (no timeline, no spans)")
	}
	return sim.WriteChromeTraceSpans(w, res.Timeline, spans)
}
