module tsplit

go 1.22
