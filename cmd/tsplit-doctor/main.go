// Command tsplit-doctor analyzes a postmortem artifact — a flight
// dump written on ladder escalation (or at exit with -flight-dump), a
// Prometheus metrics file, or a Chrome trace — and prints where the
// time went and what the run was doing when it died:
//
//	tsplit-doctor -dump crash.json
//	tsplit-doctor -metrics out.prom -baseline yesterday.prom
//	tsplit-doctor -dump crash.json -json | jq .replan.hit_rate
//
// The report covers planner phase latency (counts, p50/p95/p99, share
// of total), replan cache-hit and journal-replay rates, simulator
// stall attribution by cause, the tail of the flight ring, and — when
// -baseline names an earlier artifact — the top metric and phase
// regressions against it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tsplit/internal/obs"
)

func load(dump, metrics, trace string) (*obs.Dump, error) {
	n := 0
	for _, s := range []string{dump, metrics, trace} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("exactly one of -dump, -metrics, -trace is required")
	}
	switch {
	case dump != "":
		return obs.ReadDumpFile(dump)
	case metrics != "":
		return obs.ParsePrometheusFile(metrics)
	default:
		return obs.ParseChromeTraceFile(trace)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsplit-doctor: ")
	dump := flag.String("dump", "", "postmortem dump file (written by -flight-dump or a ladder escalation)")
	metrics := flag.String("metrics", "", "Prometheus text metrics file (tsplit-train/tsplit-bench -metrics output)")
	trace := flag.String("trace", "", "Chrome trace file with a spans lane (tsplit-train -trace output)")
	baseline := flag.String("baseline", "", "earlier artifact of the same kind to diff against (regression hunt)")
	jsonOut := flag.Bool("json", false, "emit the diagnosis as JSON for CI instead of the human report")
	requirePhases := flag.Bool("require-phases", false, "exit nonzero unless the phase-latency breakdown is non-empty (CI smoke gate)")
	flag.Parse()

	d, err := load(*dump, *metrics, *trace)
	if err != nil {
		log.Fatal(err)
	}
	var base *obs.Dump
	if *baseline != "" {
		base, err = load(
			pick(*dump != "", *baseline), pick(*metrics != "", *baseline), pick(*trace != "", *baseline))
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
	}

	diag := obs.Diagnose(d, base)
	if *requirePhases && len(diag.Phases) == 0 {
		log.Fatal("no planner/simulator phase spans in the artifact (was it produced with tracing enabled?)")
	}
	if *jsonOut {
		if err := diag.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(diag.Render())
}

// pick routes the baseline path to the same loader slot as the
// primary artifact, so -baseline is parsed with the matching format.
func pick(use bool, path string) string {
	if use {
		return path
	}
	return ""
}
