// Command tsplit-bench regenerates the paper's evaluation tables and
// figures on the simulated devices. Run with -exp all (default) or a
// comma-separated subset of:
//
//	fig1 fig2a fig2b table2 fig5 table4 table5 fig12 fig13
//	fig14a fig14b table6 table7 fig15 ablations faults planlat
//	simlat serve
//
// -quick trims the scale-search bounds so a full run finishes in about
// a minute; the defaults match the paper's ranges.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tsplit/internal/device"
	"tsplit/internal/experiments"
	"tsplit/internal/models"
	"tsplit/internal/obs"
)

// writeOut streams fn to stdout (path "-") or to path. The file Close
// error is returned: metrics and span exports flush at Close, so a
// dropped Close error is a silently truncated file.
func writeOut(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	return f.Close()
}

func main() {
	exp := flag.String("exp", "all", "experiments to run (comma-separated ids, or 'all')")
	quick := flag.Bool("quick", false, "trim scale-search bounds for a fast run")
	metrics := flag.String("metrics", "", "write Prometheus text metrics for the whole run to this file (\"-\" = stdout)")
	spans := flag.String("spans", "", "write per-cell sweep spans as JSON to this file (\"-\" = stdout)")
	flag.Parse()

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		experiments.Obs = reg
		defer func() {
			if err := writeOut(*metrics, reg.WritePrometheus); err != nil {
				fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			}
		}()
	}
	if *spans != "" {
		tr := obs.NewTracer(nil)
		experiments.Trace = tr
		defer func() {
			if err := writeOut(*spans, tr.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "spans: %v\n", err)
			}
		}()
	}

	hi := 0 // default search bounds
	hiParam := 0
	if *quick {
		hi = 512
		hiParam = 16
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	run := func(id string, f func() (string, error)) {
		if !all && !want[id] {
			return
		}
		start := obs.Wall()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			return
		}
		fmt.Printf("===== %s (%.1fs) =====\n%s\n", id, obs.Wall().Sub(start).Seconds(), out)
	}

	run("fig1", func() (string, error) {
		grid, caps, err := experiments.Fig1BERTMemoryScale()
		if err != nil {
			return "", err
		}
		return experiments.RenderFig1(grid, caps), nil
	})
	run("fig2a", func() (string, error) {
		fig, err := experiments.Fig2aMemoryTimeline(device.TitanRTX, 256)
		if err != nil {
			return "", err
		}
		return fig.Render(), nil
	})
	run("fig2b", func() (string, error) {
		rows, err := experiments.Fig2bOverheadPCIe(device.TitanRTX, "superneurons")
		if err != nil {
			return "", err
		}
		return experiments.RenderOverhead("superneurons", rows), nil
	})
	run("table2", func() (string, error) {
		buckets, err := experiments.Table2TensorSizes(32, 512)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable2(buckets), nil
	})
	run("fig5", func() (string, error) {
		curves, err := experiments.Fig5OpSplitCurves(device.TitanRTX, 64)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig5(curves), nil
	})
	run("table4", func() (string, error) {
		return experiments.Table4MaxSampleScale(device.TitanRTX, hi).Render(), nil
	})
	run("table5", func() (string, error) {
		return experiments.Table5MaxParamScale(device.TitanRTX, hiParam).Render(), nil
	})
	run("fig12", func() (string, error) {
		return experiments.Fig12ThroughputRTX().Render(), nil
	})
	run("fig13", func() (string, error) {
		return experiments.Fig13Throughput1080Ti().Render(), nil
	})
	run("fig14a", func() (string, error) {
		rows, err := experiments.Fig14aScaleUnderThroughput(device.TitanRTX, hi)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig14a(rows), nil
	})
	run("fig14b", func() (string, error) {
		rows, err := experiments.Fig14bStrategyMix(0)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig14b(rows), nil
	})
	run("table6", func() (string, error) {
		return experiments.Table6MaxSampleVsOffload(device.TitanRTX, hi).Render(), nil
	})
	run("table7", func() (string, error) {
		return experiments.Table7MaxParamVsOffload(device.TitanRTX, hiParam).Render(), nil
	})
	run("fig15", func() (string, error) {
		return experiments.Fig15ThroughputVsOffload().Render(), nil
	})
	run("faults", func() (string, error) {
		rep, err := experiments.FaultSweep("vgg16", models.Config{BatchSize: 96}, device.GTX1080Ti, 42)
		if err != nil {
			return "", err
		}
		return rep.Render(), nil
	})
	run("planlat", func() (string, error) {
		rounds := 100
		if *quick {
			rounds = 20
		}
		rows, err := experiments.PlanLatency(device.TitanRTX, rounds)
		if err != nil {
			return "", err
		}
		return experiments.RenderPlanLat(rows), nil
	})
	run("simlat", func() (string, error) {
		rounds := 100
		if *quick {
			rounds = 20
		}
		rows, err := experiments.SimLatency(device.TitanRTX, rounds)
		if err != nil {
			return "", err
		}
		return experiments.RenderSimLat(rows), nil
	})
	run("serve", func() (string, error) {
		rep, err := experiments.ServeLoad(*quick)
		if err != nil {
			return "", err
		}
		return rep.Render(), nil
	})
	run("ablations", func() (string, error) {
		reports, err := experiments.AllAblations()
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, r := range reports {
			b.WriteString(r.Render())
			b.WriteString("\n")
		}
		return b.String(), nil
	})
}
