// Command tsplit-lint runs the project's determinism lint suite over
// the module: maporder (unsorted map iteration in determinism-critical
// packages), clockdet (wall clock / ambient randomness outside the
// injectable-clock allowlist), floateq (exact float comparison in
// planner scoring), and errdrop (silently discarded errors).
//
//	tsplit-lint                   # lint the module rooted at .
//	tsplit-lint -json             # machine-readable findings
//	tsplit-lint -rules maporder   # run a subset of rules
//	tsplit-lint -C path/to/module
//
// The exit status is 1 when findings remain, 2 on usage or load
// errors. Suppress an intentional pattern with a
// `//lint:allow <rule> <reason>` comment (file-wide when placed above
// the package clause, otherwise scoped to the next line).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tsplit/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module root directory (must contain go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	rules := flag.String("rules", "", "comma-separated rule subset (default: all rules)")
	list := flag.Bool("list", false, "list the available rules and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(mod.Pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "tsplit-lint: %d finding(s) in %d package(s)\n", len(diags), len(mod.Pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
