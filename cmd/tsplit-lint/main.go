// Command tsplit-lint runs the project's static-analysis suite over
// the module: the per-package determinism rules (maporder, clockdet,
// floateq, errdrop, scratchreuse, spanpair) and the interprocedural
// concurrency-contract rules (guardedby, nilsafe, gojoin) built on
// the module call graph.
//
//	tsplit-lint                   # lint the module rooted at .
//	tsplit-lint -json             # machine-readable findings
//	tsplit-lint -rules maporder   # run a subset of rules
//	tsplit-lint -changed HEAD~1   # report only packages changed vs a ref
//	tsplit-lint -audit            # list every //lint:allow with its reason
//	tsplit-lint -report out.json  # also write findings to a JSON report
//	tsplit-lint -C path/to/module
//
// -changed narrows *reporting* to packages with .go files changed
// relative to the git ref (committed, staged, unstaged, or
// untracked); the whole module is still loaded and analyzed, since
// the interprocedural rules need every caller. If git fails (not a
// repository, unknown ref) the tool warns and falls back to a full
// run rather than linting nothing.
//
// -audit lists every suppression in the module with its file:line,
// rules, and reason, and exits 1 if any directive is missing its
// reason — a suppression must never outlive its justification.
//
// The exit status is 1 when findings remain, 2 on usage or load
// errors. Suppress an intentional pattern with a
// `//lint:allow <rule> <reason>` comment (file-wide when placed above
// the package clause, otherwise scoped to the next line).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tsplit/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module root directory (must contain go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	rules := flag.String("rules", "", "comma-separated rule subset (default: all rules)")
	list := flag.Bool("list", false, "list the available rules and exit")
	changed := flag.String("changed", "", "report findings only for packages changed vs this git ref")
	audit := flag.Bool("audit", false, "list every //lint:allow suppression; fail on missing reasons")
	report := flag.String("report", "", "also write the findings as a JSON report to this file")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *audit {
		os.Exit(runAudit(mod, *jsonOut))
	}

	var only func(string) bool
	if *changed != "" {
		pkgs, err := lint.ChangedPackages(mod, *changed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsplit-lint: -changed %s unavailable, falling back to a full run: %v\n", *changed, err)
		} else {
			only = func(p string) bool { return pkgs[p] }
		}
	}
	diags := lint.RunFiltered(mod.Pkgs, analyzers, only)

	if *report != "" {
		if err := writeReport(*report, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "tsplit-lint: %d finding(s) in %d package(s)\n", len(diags), len(mod.Pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runAudit lists every suppression and returns the process exit code:
// 1 when any //lint:allow is missing its reason.
func runAudit(mod *lint.Module, jsonOut bool) int {
	sites, missing := lint.Audit(mod.Pkgs)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sites); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, s := range sites {
			fmt.Println(s)
		}
		fmt.Fprintf(os.Stderr, "tsplit-lint: %d suppression(s), %d missing a reason\n", len(sites), len(missing))
	}
	if len(missing) > 0 {
		for _, d := range missing {
			fmt.Fprintln(os.Stderr, d)
		}
		return 1
	}
	return 0
}

// writeReport writes the findings as an indented JSON array, closing
// explicitly so a flush failure is not silently dropped.
func writeReport(path string, diags []lint.Diagnostic) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diags); err != nil {
		_ = f.Close() // the encode error is the one to report
		return err
	}
	return f.Close()
}
