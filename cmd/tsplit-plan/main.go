// Command tsplit-plan plans a model on a device and prints the full
// sTensor configuration: every swap/recompute decision with its
// eviction, prefetch and restore positions, every split decision with
// p_num and dimension, and (with -augment) the inserted-operator
// summary of the materialized augmented graph (paper Fig. 10).
//
//	tsplit-plan -model vgg16 -batch 256 -device "TITAN RTX"
//	tsplit-plan -model bert-large -batch 64 -policy superneurons
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"tsplit/internal/core"

	"tsplit"
)

// writeOut streams fn to stdout (path "-") or to path. The file Close
// error is returned: exports are buffered and flushed at Close, so a
// dropped Close error is a silently truncated plan file.
func writeOut(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	return f.Close()
}

func main() {
	model := flag.String("model", "vgg16", "model name (see tsplit.Models)")
	batch := flag.Int("batch", 128, "batch size (sample scale)")
	scale := flag.Float64("scale", 1, "parameter scale multiplier")
	devName := flag.String("device", "TITAN RTX", "device profile name")
	policy := flag.String("policy", "tsplit", "tsplit, tsplit-nosplit, or a baseline name")
	augment := flag.Bool("augment", false, "materialize and summarize the augmented graph")
	jsonPath := flag.String("json", "", "export the plan as JSON to this file (- for stdout)")
	dotPath := flag.String("dot", "", "export the augmented graph as Graphviz DOT to this file")
	verify := flag.Bool("verify", false, "check the plan against the safety invariants and fail on violations")
	verbose := flag.Bool("v", false, "print every per-tensor decision")
	flag.Parse()

	var dev tsplit.Device
	switch *devName {
	case "TITAN RTX":
		dev = tsplit.TitanRTX
	case "GTX 1080Ti":
		dev = tsplit.GTX1080Ti
	case "V100":
		dev = tsplit.V100
	case "P100":
		dev = tsplit.P100
	default:
		log.Fatalf("unknown device %q", *devName)
	}

	w, err := tsplit.Load(*model, tsplit.ModelConfig{BatchSize: *batch, ParamScale: *scale}, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s batch=%d scale=%.2g on %s\n", *model, *batch, *scale, dev)
	fmt.Printf("unmanaged peak: %.2f GiB, ideal iteration: %.3f s\n\n",
		float64(w.BaselinePeakBytes())/(1<<30), w.IdealTime())

	var plan *tsplit.Plan
	var rep tsplit.Report
	switch *policy {
	case "tsplit", "tsplit-nosplit":
		plan, rep, err = w.AutoPlan(tsplit.PlanOptions{DisableSplit: *policy == "tsplit-nosplit"})
		if err != nil {
			log.Fatalf("planning: %v", err)
		}
	default:
		plan, err = w.PlanBaseline(*policy)
		if err != nil {
			log.Fatalf("planning: %v", err)
		}
		rep, err = w.Run(plan)
		if err != nil {
			log.Fatalf("%s cannot train this configuration: %v", *policy, err)
		}
	}

	if *verbose {
		fmt.Println(plan.Describe())
	} else {
		fmt.Println(plan)
	}
	fmt.Printf("\nmeasured: %.1f samples/s (%.1f%% overhead), peak %.2f GiB, PCIe %.0f%%, %d recomputed ops\n",
		rep.Throughput, rep.Overhead*100, rep.PeakGiB, rep.PCIeUtilization*100, rep.RecomputedOps)

	if *verify {
		if vs := w.VerifyPlan(plan); len(vs) > 0 {
			fmt.Fprintf(os.Stderr, "\nplan verification FAILED: %d violation(s)\n", len(vs))
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Println("\nplan verification passed: all invariants hold")
	}

	if *jsonPath != "" {
		if err := writeOut(*jsonPath, func(w io.Writer) error { return core.ExportJSON(w, plan) }); err != nil {
			log.Fatalf("json export: %v", err)
		}
	}

	if *augment || *dotPath != "" {
		ag, err := w.Augment(plan)
		if err != nil {
			log.Fatalf("augment: %v", err)
		}
		fmt.Printf("\naugmented graph: %d ops (%d original)\n", len(ag.G.Ops), len(w.G.Ops))
		fmt.Printf("  swap-out %d  swap-in %d  split %d  merge %d  recompute %d\n",
			ag.SwapOuts, ag.SwapIns, ag.SplitOps, ag.MergeOps, ag.RecomputeOps)
		if *dotPath != "" {
			if err := writeOut(*dotPath, ag.DOT); err != nil {
				log.Fatalf("dot export: %v", err)
			}
		}
	}
}
