// Command tsplit-serve runs the TSPLIT planner as a service:
// POST /v1/plan takes a model name (or an inline graph spec), a device
// profile, and planner options, and answers with the plan, its
// predicted peak, and optionally the planner's decision report.
// Identical requests are answered from a content-addressed plan cache
// or coalesced onto one in-flight planner run; overload sheds with
// 429 + Retry-After instead of queueing without bound.
//
// GET /healthz reports liveness and cache occupancy; GET /metrics is
// Prometheus text exposition. On SIGINT/SIGTERM the server drains:
// in-flight requests finish, new ones answer 503, and -dump-out /
// -metrics-out files are written before exit.
//
// -smoke runs a self-test against an ephemeral listener instead of
// serving: plan twice (miss then byte-identical hit), scrape the
// endpoints, write the observability artifacts, and exit nonzero on
// any mismatch. CI drives it via scripts/serve_smoke.sh and feeds the
// dump to tsplit-doctor.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tsplit/internal/obs"
	"tsplit/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", 0, "plan-cache capacity in entries (0 = default 512)")
	workloadEntries := flag.Int("workload-entries", 0, "prepared-workload cache capacity (0 = default 32)")
	maxConcurrent := flag.Int("max-concurrent", 0, "simultaneous planner runs (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "requests queued for a planner slot before shedding (0 = 4x max-concurrent)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request budget in queue + planner (0 = none)")
	retryAfter := flag.Int("retry-after", 0, "Retry-After seconds on 429 responses (0 = default 1)")
	flightN := flag.Int("flight", 1024, "flight-recorder ring size (events kept for the shutdown dump)")
	metricsOut := flag.String("metrics-out", "", "write Prometheus text metrics to this file at exit")
	dumpOut := flag.String("dump-out", "", "write a tsplit-doctor postmortem dump (flight + metrics + spans) to this file at exit")
	smoke := flag.Bool("smoke", false, "self-test against an ephemeral listener, write artifacts, and exit")
	flag.Parse()

	reg := obs.NewRegistry()
	tr := obs.NewTracer(nil)
	fl := obs.NewFlight(*flightN, nil)
	srv := serve.New(serve.Config{
		CacheEntries:      *cacheEntries,
		WorkloadEntries:   *workloadEntries,
		MaxConcurrent:     *maxConcurrent,
		MaxQueue:          *maxQueue,
		RequestTimeout:    *requestTimeout,
		RetryAfterSeconds: *retryAfter,
		Metrics:           reg,
		Trace:             tr,
		Flight:            fl,
	})

	writeArtifacts := func() error {
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return err
			}
			if err := reg.WritePrometheus(f); err != nil {
				_ = f.Close() // the write error is the one to report
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if *dumpOut != "" {
			dump := &obs.Dump{
				Reason:  "tsplit-serve shutdown",
				Events:  fl.Events(),
				Metrics: reg.Snapshot(),
				Spans:   tr.Tree(),
			}
			if err := obs.FileSink(*dumpOut)(dump); err != nil {
				return err
			}
		}
		return nil
	}

	if *smoke {
		if err := runSmoke(srv, writeArtifacts); err != nil {
			fmt.Fprintf(os.Stderr, "tsplit-serve -smoke: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("tsplit-serve smoke ok")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsplit-serve: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("tsplit-serve listening on %s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("tsplit-serve: %v: draining\n", sig)
		srv.Drain() // in-flight requests finish; new ones answer 503
		_ = hs.Close()
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "tsplit-serve: %v\n", err)
	}
	if err := writeArtifacts(); err != nil {
		fmt.Fprintf(os.Stderr, "tsplit-serve: writing artifacts: %v\n", err)
		os.Exit(1)
	}
}

// runSmoke exercises the full service surface over a real listener:
// plan (miss), plan again (byte-identical hit), reject an unknown
// model, and read back /healthz and /metrics. It leaves the
// observability artifacts behind for tsplit-doctor.
func runSmoke(srv *serve.Server, writeArtifacts func() error) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer func() { _ = hs.Close() }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: time.Minute}

	const body = `{"model":"vgg16","config":{"batch_size":32},"options":{"report":true}}`
	post := func() ([]byte, string, error) {
		resp, err := client.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, "", fmt.Errorf("plan: status %d: %s", resp.StatusCode, b)
		}
		return b, resp.Header.Get("X-Tsplit-Cache"), nil
	}
	first, state, err := post()
	if err != nil {
		return err
	}
	if state != "miss" {
		return fmt.Errorf("first plan: cache state %q, want miss", state)
	}
	second, state, err := post()
	if err != nil {
		return err
	}
	if state != "hit" {
		return fmt.Errorf("second plan: cache state %q, want hit", state)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("cache hit is not byte-identical to the miss (%d vs %d bytes)", len(first), len(second))
	}

	resp, err := client.Post(base+"/v1/plan", "application/json", strings.NewReader(`{"model":"nosuch"}`))
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("unknown model: status %d, want 404", resp.StatusCode)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := client.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		b, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d err %v", path, resp.StatusCode, err)
		}
		if path == "/metrics" {
			for _, want := range []string{
				"tsplit_serve_requests_total", "tsplit_serve_cache_hits_total",
				"tsplit_serve_planner_runs_total",
			} {
				if !strings.Contains(string(b), want) {
					return fmt.Errorf("/metrics missing %s", want)
				}
			}
		}
	}

	srv.Drain()
	return writeArtifacts()
}
