// Command tsplit-train runs REAL float32 training of a small
// convolutional classifier on synthetic data under a device-memory
// budget, with the full TSPLIT pipeline: profile → plan → execute with
// physical swap / recompute / micro-batch splitting. It demonstrates
// that a planned run reproduces the unconstrained losses exactly while
// staying under the budget.
//
//	tsplit-train -batch 32 -steps 10 -budget 0.6
//
// With -model it instead plans and simulates a zoo model (vgg16,
// bert-large, ...) on a Titan RTX. Either mode exports observability
// artifacts on request:
//
//	tsplit-train -model vgg16 -batch 64 \
//	    -metrics out.prom -trace out.json -plan-report report.json
//
// Open the trace in chrome://tracing or https://ui.perfetto.dev.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"tsplit/internal/core"
	"tsplit/internal/graph"
	"tsplit/internal/hostexec"
	"tsplit/internal/nn"
	"tsplit/internal/profiler"
	"tsplit/internal/sim"
	"tsplit/internal/tensor"

	"tsplit"
)

func buildNet(batch int) (*graph.Graph, *graph.Tensor) {
	g := graph.New()
	images := g.Input("images", tensor.NewShape(batch, 1, 16, 16), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(batch), tensor.Int32)
	x := g.ReLU("c1.relu", g.Conv2D("c1", images, 8, 3, 1, 1))
	x = g.MaxPool("p1", x, 2, 2, 0)
	x = g.ReLU("c2.relu", g.Conv2D("c2", x, 16, 3, 1, 1))
	x = g.MaxPool("p2", x, 2, 2, 0)
	flat := g.Reshape("flat", x, tensor.NewShape(batch, 16*4*4))
	h := g.ReLU("fc1.relu", g.Dense("fc1", flat, 64))
	logits := g.Dense("fc2", h, 4)
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(graph.Momentum); err != nil {
		log.Fatal(err)
	}
	return g, images
}

// outputs groups the observability flags shared by both modes.
type outputs struct {
	metrics, trace, report string
	spans, flightDump      string
	reg                    *tsplit.Registry
	tr                     *tsplit.Tracer
	fl                     *tsplit.Flight
	dumper                 *tsplit.Dumper
}

func (o *outputs) wantTrace() bool { return o.trace != "" }

// initObs builds the tracer, flight ring, and dumper the requested
// artifacts need. All three stay nil (free) unless asked for. -trace
// alone does NOT enable the tracer: span durations are wall-clock,
// and a spanless trace must stay byte-reproducible run to run under a
// fixed fault seed. Combine -trace with -spans to get the spans lane.
func (o *outputs) initObs(flightSize int) {
	if o.spans != "" || o.flightDump != "" {
		o.tr = tsplit.NewTracer()
	}
	if o.flightDump != "" {
		o.fl = tsplit.NewFlight(flightSize)
		o.dumper = &tsplit.Dumper{
			Flight:   o.fl,
			Registry: o.reg,
			Tracer:   o.tr,
			Sink:     tsplit.FileSink(o.flightDump),
		}
	}
}

// finishDump writes a final postmortem snapshot unless a ladder
// escalation already triggered one mid-run, so -flight-dump always
// leaves an artifact for tsplit-doctor.
func (o *outputs) finishDump() {
	if o.dumper == nil {
		return
	}
	if len(o.dumper.Triggers()) == 0 {
		o.dumper.Trigger("run completed")
	}
	if err := o.dumper.Err(); err != nil {
		log.Fatalf("writing flight dump: %v", err)
	}
	fmt.Printf("flight dump (%v) written to %s — analyze with tsplit-doctor -dump\n",
		o.dumper.Triggers(), o.flightDump)
}

func (o *outputs) writeSpans() {
	if o.spans == "" {
		return
	}
	if err := writeFile(o.spans, o.tr.WriteJSON); err != nil {
		log.Fatalf("writing spans: %v", err)
	}
	fmt.Printf("span tree written to %s\n", o.spans)
}

// writeFile opens path ("-" = stdout) and hands it to fn.
func writeFile(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close() // the fn error is the one worth reporting
		return err
	}
	return f.Close()
}

func (o *outputs) writeMetrics() {
	if o.metrics == "" {
		return
	}
	if err := writeFile(o.metrics, o.reg.WritePrometheus); err != nil {
		log.Fatalf("writing metrics: %v", err)
	}
	fmt.Printf("metrics written to %s\n", o.metrics)
}

func (o *outputs) writeReport(rep *tsplit.PlanReport) {
	if o.report == "" || rep == nil {
		return
	}
	if err := writeFile(o.report, rep.WriteJSON); err != nil {
		log.Fatalf("writing plan report: %v", err)
	}
	fmt.Printf("plan report (%d decisions) written to %s\n", len(rep.Decisions), o.report)
}

func (o *outputs) writeTrace(timeline []sim.TimelinePoint) {
	if o.trace == "" {
		return
	}
	if err := writeFile(o.trace, func(w io.Writer) error {
		return sim.WriteChromeTraceSpans(w, timeline, o.tr.Tree())
	}); err != nil {
		log.Fatalf("writing trace: %v", err)
	}
	fmt.Printf("trace (%d timeline points) written to %s — open in https://ui.perfetto.dev\n",
		len(timeline), o.trace)
}

// faultOpts groups the fault-injection flags.
type faultOpts struct {
	enabled  bool
	seed     uint64
	severity float64
}

// runZooFaulted plans and simulates a zoo model under an injected
// hostile environment, descending the graceful-degradation ladder
// instead of aborting on injected OOM.
func runZooFaulted(model string, batch int, budget float64, fo faultOpts, out *outputs) {
	w, err := tsplit.Load(model, tsplit.ModelConfig{BatchSize: batch}, tsplit.TitanRTX)
	if err != nil {
		log.Fatal(err)
	}
	cap := int64(float64(w.BaselinePeakBytes()) * budget)
	if cap > w.Dev.MemBytes {
		cap = w.Dev.MemBytes
	}
	fmt.Printf("%s batch %d: unmanaged peak %.2f GiB; budget %.2f GiB; faults seed=%d severity=%.2f\n",
		model, batch, float64(w.BaselinePeakBytes())/(1<<30), float64(cap)/(1<<30), fo.seed, fo.severity)

	opts := []tsplit.RunOption{tsplit.Observe(out.reg)}
	if out.wantTrace() {
		opts = append(opts, tsplit.WithTimeline())
	}
	outcome, rep, err := w.RunResilient(
		tsplit.PlanOptions{
			CapacityBytes: cap, Observe: out.reg,
			Trace: out.tr, Flight: out.fl, Postmortem: out.dumper,
		},
		tsplit.FaultConfig{Seed: fo.seed, Severity: fo.severity},
		opts...)
	if err != nil {
		log.Fatalf("resilient run: %v", err)
	}
	for _, st := range outcome.Stages {
		status := "ok"
		if st.Err != "" {
			status = st.Err
		}
		fmt.Printf("  ladder %-8s margin=%.2f  %s\n", st.Kind, st.Margin, status)
	}
	f := rep.Raw.Faults
	fmt.Printf("simulated iteration: %.1f samples/s, peak %.2f GiB, overhead %.1f%%, PCIe %.0f%%\n",
		rep.Throughput, rep.PeakGiB, rep.Overhead*100, rep.PCIeUtilization*100)
	fmt.Printf("faults: %d swap retries (%d exhausted), %d degraded transfers, %d capacity events, noise %+.3fs\n",
		f.SwapRetries, f.SwapExhausted, f.BandwidthEvents, f.CapacityEvents, f.OpNoiseSeconds)

	out.writeReport(outcome.Report)
	out.writeTrace(rep.Raw.Timeline)
	out.writeSpans()
	out.writeMetrics()
	out.finishDump()
}

// runZoo plans and simulates one iteration of a zoo model under a
// budget, exporting whatever artifacts were requested.
func runZoo(model string, batch int, budget float64, out *outputs) {
	w, err := tsplit.Load(model, tsplit.ModelConfig{BatchSize: batch}, tsplit.TitanRTX)
	if err != nil {
		log.Fatal(err)
	}
	cap := int64(float64(w.BaselinePeakBytes()) * budget)
	if cap > w.Dev.MemBytes {
		cap = w.Dev.MemBytes
	}
	fmt.Printf("%s batch %d: unmanaged peak %.2f GiB; budget %.2f GiB\n",
		model, batch, float64(w.BaselinePeakBytes())/(1<<30), float64(cap)/(1<<30))

	plan, report, err := w.PlanWithReport(tsplit.PlanOptions{
		CapacityBytes: cap, Observe: out.reg, Trace: out.tr, Flight: out.fl,
	})
	if err != nil {
		log.Fatalf("planning: %v", err)
	}
	fmt.Println(plan)

	opts := []tsplit.RunOption{
		tsplit.Observe(out.reg), tsplit.WithTrace(out.tr), tsplit.WithFlight(out.fl),
	}
	if out.wantTrace() {
		opts = append(opts, tsplit.WithTimeline())
	}
	rep, err := w.Run(plan, opts...)
	if err != nil {
		log.Fatalf("simulating: %v", err)
	}
	fmt.Printf("simulated iteration: %.1f samples/s, peak %.2f GiB, overhead %.1f%%, PCIe %.0f%%\n",
		rep.Throughput, rep.PeakGiB, rep.Overhead*100, rep.PCIeUtilization*100)

	out.writeReport(report)
	out.writeTrace(rep.Raw.Timeline)
	out.writeSpans()
	out.writeMetrics()
	out.finishDump()
}

func main() {
	model := flag.String("model", "", "zoo model to plan and simulate (e.g. vgg16, bert-large); empty = real float32 training demo")
	batch := flag.Int("batch", 32, "batch size")
	steps := flag.Int("steps", 10, "training steps (demo mode)")
	budget := flag.Float64("budget", 0.65, "device budget as a fraction of the unmanaged peak")
	metrics := flag.String("metrics", "", "write Prometheus text metrics to this file (\"-\" = stdout)")
	trace := flag.String("trace", "", "write a Chrome/Perfetto trace of the simulated iteration to this file")
	planReport := flag.String("plan-report", "", "write the planner's JSON decision report to this file (\"-\" = stdout)")
	spans := flag.String("spans", "", "write the span tree (planner phases, per-op execution) as JSON to this file (\"-\" = stdout)")
	flightDump := flag.String("flight-dump", "", "write a postmortem flight dump to this file (on ladder escalation, else at exit) for tsplit-doctor")
	flightSize := flag.Int("flight-size", 0, "flight-ring capacity in events (0 = default)")
	faultsOn := flag.Bool("faults", false, "inject a deterministic hostile environment (op noise, PCIe degradation, transient transfer failures, capacity shrink) and run the degradation ladder")
	faultSeed := flag.Uint64("fault-seed", 1, "fault-injection seed; same seed + severity replays the same faults byte for byte")
	faultSeverity := flag.Float64("fault-severity", tsplit.DefaultFaultSeverity, "fault severity in (0, 1]")
	flag.Parse()

	out := &outputs{
		metrics: *metrics, trace: *trace, report: *planReport,
		spans: *spans, flightDump: *flightDump, reg: tsplit.NewRegistry(),
	}
	out.initObs(*flightSize)

	if *model != "" {
		if *faultsOn {
			runZooFaulted(*model, *batch, *budget, faultOpts{enabled: true, seed: *faultSeed, severity: *faultSeverity}, out)
			return
		}
		runZoo(*model, *batch, *budget, out)
		return
	}
	if *faultsOn {
		log.Fatal("-faults requires -model (fault injection runs in the simulator, not the float32 demo)")
	}

	g, images := buildNet(*batch)
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		log.Fatal(err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	prof := profiler.New(tsplit.TitanRTX, sched)
	cap := int64(float64(lv.Peak) * *budget)
	fmt.Printf("unmanaged peak %.2f MiB; budget %.2f MiB\n", float64(lv.Peak)/(1<<20), float64(cap)/(1<<20))

	pl := core.NewPlanner(g, sched, lv, prof, tsplit.TitanRTX, core.Options{
		Capacity: cap * 85 / 100, FragmentationReserve: -1,
		Obs: out.reg, CollectReport: out.report != "",
		Trace: out.tr, Flight: out.fl,
	})
	plan, err := pl.Plan()
	if err != nil {
		log.Fatalf("planning: %v", err)
	}
	fmt.Println(plan)

	free := hostexec.New(g, sched, core.NewPlan("base", tsplit.TitanRTX), 42)
	tight := hostexec.New(g, sched, plan, 42)
	tight.Capacity = cap

	r := nn.NewRNG(3)
	for s := 1; s <= *steps; s++ {
		img := nn.NewBuffer(images.Shape)
		labels := make([]int, *batch)
		for b := 0; b < *batch; b++ {
			cls := r.Intn(4)
			labels[b] = cls
			oh, ow := (cls/2)*8, (cls%2)*8
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					img.Set(1, b, 0, oh+i, ow+j)
				}
			}
		}
		l1, err := free.Step(map[*graph.Tensor]*nn.Buffer{images: img.Clone()}, labels)
		if err != nil {
			log.Fatal(err)
		}
		l2, err := tight.Step(map[*graph.Tensor]*nn.Buffer{images: img}, labels)
		if err != nil {
			log.Fatal(err)
		}
		match := "=="
		if l1 != l2 {
			match = "!!"
		}
		fmt.Printf("step %2d  loss %.6f %s %.6f\n", s, l1, match, l2)
	}
	fmt.Printf("\npeaks: unconstrained %.2f MiB, planned %.2f MiB (budget %.2f MiB); %d swaps, %d recomputes\n",
		float64(free.PeakBytes)/(1<<20), float64(tight.PeakBytes)/(1<<20), float64(cap)/(1<<20),
		tight.Swaps, tight.Recomputes)

	out.writeReport(pl.Report())
	if out.wantTrace() {
		res, err := sim.New(g, sched, lv, plan, tsplit.TitanRTX, sim.Options{
			Recompute: sim.LRURecompute, CollectTimeline: true, Obs: out.reg,
			Trace: out.tr, Flight: out.fl,
		}).Run()
		if err != nil {
			log.Fatalf("simulating for trace: %v", err)
		}
		out.writeTrace(res.Timeline)
	}
	out.writeSpans()
	out.writeMetrics()
	out.finishDump()
}
