// Command tsplit-train runs REAL float32 training of a small
// convolutional classifier on synthetic data under a device-memory
// budget, with the full TSPLIT pipeline: profile → plan → execute with
// physical swap / recompute / micro-batch splitting. It demonstrates
// that a planned run reproduces the unconstrained losses exactly while
// staying under the budget.
//
//	tsplit-train -batch 32 -steps 10 -budget 0.6
package main

import (
	"flag"
	"fmt"
	"log"

	"tsplit/internal/core"
	"tsplit/internal/graph"
	"tsplit/internal/hostexec"
	"tsplit/internal/nn"
	"tsplit/internal/profiler"
	"tsplit/internal/tensor"

	"tsplit"
)

func buildNet(batch int) (*graph.Graph, *graph.Tensor) {
	g := graph.New()
	images := g.Input("images", tensor.NewShape(batch, 1, 16, 16), tensor.Float32)
	labels := g.Input("labels", tensor.NewShape(batch), tensor.Int32)
	x := g.ReLU("c1.relu", g.Conv2D("c1", images, 8, 3, 1, 1))
	x = g.MaxPool("p1", x, 2, 2, 0)
	x = g.ReLU("c2.relu", g.Conv2D("c2", x, 16, 3, 1, 1))
	x = g.MaxPool("p2", x, 2, 2, 0)
	flat := g.Reshape("flat", x, tensor.NewShape(batch, 16*4*4))
	h := g.ReLU("fc1.relu", g.Dense("fc1", flat, 64))
	logits := g.Dense("fc2", h, 4)
	g.CrossEntropyLoss("loss", logits, labels)
	if err := g.Differentiate(graph.Momentum); err != nil {
		log.Fatal(err)
	}
	return g, images
}

func main() {
	batch := flag.Int("batch", 32, "batch size")
	steps := flag.Int("steps", 10, "training steps")
	budget := flag.Float64("budget", 0.65, "device budget as a fraction of the unmanaged peak")
	flag.Parse()

	g, images := buildNet(*batch)
	sched, err := graph.BuildSchedule(g)
	if err != nil {
		log.Fatal(err)
	}
	lv := graph.AnalyzeLiveness(g, sched)
	prof := profiler.New(tsplit.TitanRTX, sched)
	cap := int64(float64(lv.Peak) * *budget)
	fmt.Printf("unmanaged peak %.2f MiB; budget %.2f MiB\n", float64(lv.Peak)/(1<<20), float64(cap)/(1<<20))

	plan, err := core.NewPlanner(g, sched, lv, prof, tsplit.TitanRTX, core.Options{
		Capacity: cap * 85 / 100, FragmentationReserve: -1,
	}).Plan()
	if err != nil {
		log.Fatalf("planning: %v", err)
	}
	fmt.Println(plan)

	free := hostexec.New(g, sched, core.NewPlan("base", tsplit.TitanRTX), 42)
	tight := hostexec.New(g, sched, plan, 42)
	tight.Capacity = cap

	r := nn.NewRNG(3)
	for s := 1; s <= *steps; s++ {
		img := nn.NewBuffer(images.Shape)
		labels := make([]int, *batch)
		for b := 0; b < *batch; b++ {
			cls := r.Intn(4)
			labels[b] = cls
			oh, ow := (cls/2)*8, (cls%2)*8
			for i := 0; i < 8; i++ {
				for j := 0; j < 8; j++ {
					img.Set(1, b, 0, oh+i, ow+j)
				}
			}
		}
		l1, err := free.Step(map[*graph.Tensor]*nn.Buffer{images: img.Clone()}, labels)
		if err != nil {
			log.Fatal(err)
		}
		l2, err := tight.Step(map[*graph.Tensor]*nn.Buffer{images: img}, labels)
		if err != nil {
			log.Fatal(err)
		}
		match := "=="
		if l1 != l2 {
			match = "!!"
		}
		fmt.Printf("step %2d  loss %.6f %s %.6f\n", s, l1, match, l2)
	}
	fmt.Printf("\npeaks: unconstrained %.2f MiB, planned %.2f MiB (budget %.2f MiB); %d swaps, %d recomputes\n",
		float64(free.PeakBytes)/(1<<20), float64(tight.PeakBytes)/(1<<20), float64(cap)/(1<<20),
		tight.Swaps, tight.Recomputes)
}
