// Golden equivalence test for the planner's two execution paths: the
// serial reference (full memory-curve rebuild + single-threaded
// scoring, Options.Serial) and the default incremental + parallel
// path. The paths share scoring arithmetic but differ completely in
// how the curve is maintained, how recompute chains are refreshed, and
// how candidates are reduced, so byte-identical plans across the whole
// model zoo is a strong end-to-end check of the incremental machinery.
package tsplit_test

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"tsplit/internal/core"
	"tsplit/internal/device"
	"tsplit/internal/experiments"
	"tsplit/internal/models"
)

// canonicalPlan renders every decision of a plan in a deterministic
// order (maps serialized by sorted key) so two plans can be compared
// byte for byte.
func canonicalPlan(p *core.Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s offload=%v shard=%v\n", p.Name, p.OffloadOptimizer, p.ShardParams)
	fmt.Fprintf(&b, "time=%.17g peak=%d\n", p.PredictedTime, p.PredictedPeak)
	tids := make([]int, 0, len(p.Tensors))
	for id := range p.Tensors {
		tids = append(tids, id)
	}
	sort.Ints(tids)
	for _, id := range tids {
		tp := p.Tensors[id]
		fmt.Fprintf(&b, "t%d %s opt=%v evict=%d restore=%d prefetch=%d micro=%d chain=%d\n",
			id, tp.Tensor.Name, tp.Opt, tp.EvictAt, tp.RestoreAt, tp.PrefetchAt, tp.MicroRestore, tp.ChainBytes)
	}
	oids := make([]int, 0, len(p.Splits))
	for id := range p.Splits {
		oids = append(oids, id)
	}
	sort.Ints(oids)
	for _, id := range oids {
		sp := p.Splits[id]
		fmt.Fprintf(&b, "op%d %s pnum=%d dim=%v inopt=%v earlyout=%v", id, sp.Op.Name, sp.PNum, sp.Dim, sp.InOpt, sp.EarlyOut)
		if sp.In2 != nil {
			fmt.Fprintf(&b, " in2=%d", sp.In2.ID)
		}
		for _, t := range sp.MicroIns {
			fmt.Fprintf(&b, " micro=%d", t.ID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestPlannerSerialParallelEquivalence plans every zoo model at two
// over-subscription levels with both paths and requires identical
// output — including infeasible outcomes, whose partial plans and
// errors must also agree.
func TestPlannerSerialParallelEquivalence(t *testing.T) {
	// Historical: the incremental path once fanned scoring out to a
	// GOMAXPROCS-sized worker pool. The fold is single-threaded now
	// (the candidate index made scoring cheaper than handing it out),
	// but the test still runs at GOMAXPROCS=4 so any future
	// parallelism inherits the race check.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, model := range models.Names() {
		for _, pct := range []int64{75, 55} {
			p, err := experiments.Prepare(model, models.Config{}, device.TitanRTX)
			if err != nil {
				t.Fatalf("%s: prepare: %v", model, err)
			}
			capacity := p.Lv.Peak * pct / 100
			run := func(serial bool) (*core.Plan, error) {
				opts := core.Options{Capacity: capacity, FragmentationReserve: -1, Serial: serial}
				return core.NewPlanner(p.G, p.Sched, p.Lv, p.Prof, p.Dev, opts).Plan()
			}
			sp, serr := run(true)
			pp, perr := run(false)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%s@%d%%: error mismatch: serial=%v parallel=%v", model, pct, serr, perr)
			}
			if serr != nil && serr.Error() != perr.Error() {
				t.Fatalf("%s@%d%%: error text mismatch:\nserial:   %v\nparallel: %v", model, pct, serr, perr)
			}
			cs, cp := canonicalPlan(sp), canonicalPlan(pp)
			if cs != cp {
				t.Errorf("%s@%d%%: plans differ\n--- serial ---\n%s--- parallel ---\n%s", model, pct, cs, cp)
			}
		}
	}
}
